#include "src/core/dp_rank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "src/core/free_pack.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

// DP effort mirrored into the process registry once per solve. Every
// count is deterministic per instance, so the totals are identical across
// thread counts and hosts.
util::Counter& kDpRuns = util::MetricsRegistry::counter(
    "iarank_dp_runs_total", "dp_rank invocations");
util::Counter& kDpCells = util::MetricsRegistry::counter(
    "iarank_dp_cells_total", "DP state elements (arena nodes) evaluated");
util::Counter& kDpHeapPops = util::MetricsRegistry::counter(
    "iarank_dp_heap_pops_total", "best-first candidates examined");
util::Counter& kDpVerifyCalls = util::MetricsRegistry::counter(
    "iarank_dp_verify_calls_total", "free-pack verifications run by the DP");
util::Gauge& kDpMaxFrontier = util::MetricsRegistry::gauge(
    "iarank_dp_max_frontier", "largest Pareto frontier seen (high-water)");

constexpr double kRelTol = 1e-9;

/// One Pareto-frontier element: repeater area and count consumed by the
/// delay-met prefix placed on pairs 0..level-1, plus reconstruction links.
struct Node {
  double r = 0.0;        ///< repeater area used [m^2]
  std::int64_t z = 0;    ///< repeater count used
  std::int32_t parent = -1;  ///< arena index of the predecessor
  std::int32_t c = 0;    ///< bunches assigned to the previous pair
};

/// Frontier entry: the Pareto key duplicated next to the arena index, so
/// dominance scans touch one contiguous array instead of chasing arena
/// pointers (the scans dominate forward-pass time).
struct FrontEntry {
  double r = 0.0;
  std::int64_t z = 0;
  std::int32_t idx = -1;  ///< arena index of the full node
};

/// Heap entry: either an unverified iterator positioned at its best
/// remaining break point, or a verified candidate.
struct HeapEntry {
  std::int64_t key = 0;  ///< upper bound (optimistic) or exact (verified) rank
  bool verified = false;
  std::int32_t node = -1;  ///< arena index of the state element
  std::int32_t j = 0;      ///< break pair
  std::int64_t b = 0;      ///< first bunch of pair j's chunk
  std::int64_t c = 0;      ///< delay-met bunches on pair j
  std::int64_t w_extra = 0;  ///< refined wires (verified entries only)
};

struct HeapCmp {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.key != b.key) return a.key < b.key;  // max-heap on rank
    return a.verified < b.verified;            // verified first on ties
  }
};

/// Cumulative cost of placing bunches b..b+c-1, all meeting delay, on
/// pair j.
struct ChunkCost {
  double wire_area = 0.0;
  double rep_area = 0.0;
  std::int64_t rep_count = 0;
  bool ok = true;
};

void publish_stats(const RankResult::DpStats& stats) {
  kDpRuns.inc();
  kDpCells.inc(stats.arena_nodes);
  kDpHeapPops.inc(stats.heap_pops);
  kDpVerifyCalls.inc(stats.verify_calls);
  kDpMaxFrontier.set_max(stats.max_frontier);
}

class DpSolver {
 public:
  DpSolver(const Instance& inst, const DpOptions& opt)
      : inst_(inst), opt_(opt), m_(inst.pair_count()),
        n_bunches_(static_cast<std::int64_t>(inst.bunch_count())) {}

  RankResult solve();

 private:
  const Instance& inst_;
  const DpOptions& opt_;
  const std::size_t m_;
  const std::int64_t n_bunches_;

  std::vector<Node> arena_;
  /// levels_[j][b] = active Pareto frontier of states entering pair j with
  /// bunch b unassigned. Dense by bunch index (was a std::map): the
  /// forward pass walks buckets in the same ascending-b order, so survivor
  /// sets, arena order and heap push order — hence results — are
  /// unchanged, but lookup is an index instead of a tree walk.
  std::vector<std::vector<std::vector<FrontEntry>>> levels_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap_;
  RankResult::DpStats stats_;

  [[nodiscard]] double budget_tol() const {
    return inst_.repeater_budget() * kRelTol + 1e-30;
  }
  [[nodiscard]] double area_tol() const { return inst_.pair_capacity() * kRelTol; }

  [[nodiscard]] ChunkCost chunk_cost(std::int64_t b, std::size_t j,
                                     std::int64_t c, double base_r,
                                     double capacity) const;

  /// Inserts a node into level/bunch state with dominance pruning:
  /// dominated newcomers are dropped, newly dominated incumbents removed.
  void add_node(std::size_t level, std::int64_t b, const Node& node);

  void forward_pass();
  void push_iterator(std::int32_t node, std::size_t j, std::int64_t b,
                     std::int64_t c);
  [[nodiscard]] std::int64_t optimistic_rank(std::int64_t b,
                                             std::int64_t c) const;

  /// Verifies entry `e` (runs free_pack, attempts refinement). Returns the
  /// verified entry when some variant is feasible.
  [[nodiscard]] std::optional<HeapEntry> verify(const HeapEntry& e) const;

  [[nodiscard]] FreePackInput pack_input(const HeapEntry& e,
                                         const ChunkCost& cost,
                                         std::int64_t w_extra) const;

  [[nodiscard]] RankResult assemble(const HeapEntry& best) const;
};

ChunkCost DpSolver::chunk_cost(std::int64_t b, std::size_t j, std::int64_t c,
                               double base_r, double capacity) const {
  ChunkCost cost;
  for (std::int64_t t = 0; t < c; ++t) {
    const auto bb = static_cast<std::size_t>(b + t);
    const DelayPlan& plan = inst_.plan(bb, j);
    if (!plan.feasible) {
      cost.ok = false;
      return cost;
    }
    const std::int64_t count = inst_.bunch(bb).count;
    cost.wire_area += inst_.wire_area(bb, j, count);
    cost.rep_area += static_cast<double>(count) * plan.area_per_wire;
    cost.rep_count += count * plan.repeaters_per_wire();
    if (cost.wire_area > capacity + area_tol() ||
        base_r + cost.rep_area > inst_.repeater_budget() + budget_tol()) {
      cost.ok = false;
      return cost;
    }
  }
  return cost;
}

std::int64_t DpSolver::optimistic_rank(std::int64_t b, std::int64_t c) const {
  const std::int64_t base =
      inst_.wires_before(static_cast<std::size_t>(std::min(b + c, n_bunches_)));
  if (!opt_.refine_boundary || b + c >= n_bunches_) return base;
  return base + inst_.bunch(static_cast<std::size_t>(b + c)).count;
}

void DpSolver::push_iterator(std::int32_t node, std::size_t j, std::int64_t b,
                             std::int64_t c) {
  heap_.push({optimistic_rank(b, c), false, node, static_cast<std::int32_t>(j),
              b, c, 0});
}

void DpSolver::add_node(std::size_t level, std::int64_t b, const Node& node) {
  auto& frontier = levels_[level][static_cast<std::size_t>(b)];
  for (const FrontEntry& have : frontier) {
    if (have.r <= node.r && have.z <= node.z) return;  // dominated newcomer
  }
  std::erase_if(frontier, [&node](const FrontEntry& have) {
    return node.r <= have.r && node.z <= have.z;
  });
  arena_.push_back(node);
  frontier.push_back({node.r, node.z, static_cast<std::int32_t>(arena_.size() - 1)});
  stats_.max_frontier = std::max(
      stats_.max_frontier, static_cast<std::int64_t>(frontier.size()));
}

void DpSolver::forward_pass() {
  // One bucket per bunch index plus one, so the root state (b = 0) has a
  // home even for a degenerate empty instance.
  const std::size_t buckets = static_cast<std::size_t>(n_bunches_) + 1;
  levels_.assign(m_ + 1, std::vector<std::vector<FrontEntry>>(buckets));
  arena_.push_back({0.0, 0, -1, 0});
  levels_[0][0].push_back({0.0, 0, 0});
  stats_.max_frontier = std::max<std::int64_t>(stats_.max_frontier, 1);

  for (std::size_t j = 0; j < m_; ++j) {
    for (std::size_t bi = 0; bi < buckets; ++bi) {
      // add_node only touches level j+1, so this reference stays valid.
      const std::vector<FrontEntry>& frontier = levels_[j][bi];
      if (frontier.empty()) continue;
      const auto b = static_cast<std::int64_t>(bi);
      const double wires_above = static_cast<double>(inst_.wires_before(bi));
      for (const FrontEntry& entry : frontier) {
        const std::int32_t idx = entry.idx;
        // Copy: arena_ may reallocate while we extend it below.
        const Node node = arena_[static_cast<std::size_t>(idx)];
        const double capacity =
            inst_.pair_capacity() -
            inst_.blockage(j, wires_above, static_cast<double>(node.z));

        // c = 0: leave pair j empty, the prefix continues below — legal
        // only when the via shadow from above fits the empty pair's
        // capacity (the per-pair constraint binds even with no wires).
        if (j + 1 < m_ && capacity >= -area_tol()) {
          add_node(j + 1, b, {node.r, node.z, idx, 0});
        }

        double cum_area = 0.0;
        double cum_rep_area = 0.0;
        std::int64_t cum_rep_count = 0;
        std::int64_t c = 0;
        while (b + c < n_bunches_) {
          const auto bb = static_cast<std::size_t>(b + c);
          const DelayPlan& plan = inst_.plan(bb, j);
          if (!plan.feasible) break;
          const std::int64_t count = inst_.bunch(bb).count;
          const double next_area = cum_area + inst_.wire_area(bb, j, count);
          const double next_rep =
              cum_rep_area + static_cast<double>(count) * plan.area_per_wire;
          if (next_area > capacity + area_tol()) break;
          if (node.r + next_rep > inst_.repeater_budget() + budget_tol()) break;
          cum_area = next_area;
          cum_rep_area = next_rep;
          cum_rep_count += count * plan.repeaters_per_wire();
          ++c;
          if (j + 1 < m_ && b + c < n_bunches_) {
            add_node(j + 1, b + c,
                     {node.r + cum_rep_area, node.z + cum_rep_count, idx,
                      static_cast<std::int32_t>(c)});
          }
        }
        // One iterator per state element, positioned at its largest c.
        push_iterator(idx, j, b, c);
      }
    }
  }
}

FreePackInput DpSolver::pack_input(const HeapEntry& e, const ChunkCost& cost,
                                   std::int64_t w_extra) const {
  const Node& node = arena_[static_cast<std::size_t>(e.node)];
  FreePackInput in;
  in.first_pair = static_cast<std::size_t>(e.j);
  in.first_bunch = static_cast<std::size_t>(std::min(e.b + e.c, n_bunches_));
  in.first_bunch_offset = w_extra;
  in.area_used_first_pair = cost.wire_area;
  in.wires_above_first =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(e.b)));
  in.repeaters_above_first = static_cast<double>(node.z);
  in.repeaters_total = static_cast<double>(node.z + cost.rep_count);
  if (w_extra > 0) {
    const auto bb = static_cast<std::size_t>(e.b + e.c);
    const DelayPlan& plan = inst_.plan(bb, static_cast<std::size_t>(e.j));
    in.area_used_first_pair +=
        inst_.wire_area(bb, static_cast<std::size_t>(e.j), w_extra);
    in.repeaters_total +=
        static_cast<double>(w_extra * plan.repeaters_per_wire());
  }
  return in;
}

std::optional<HeapEntry> DpSolver::verify(const HeapEntry& e) const {
  const Node& node = arena_[static_cast<std::size_t>(e.node)];
  const double wires_above =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(e.b)));
  const double capacity =
      inst_.pair_capacity() - inst_.blockage(static_cast<std::size_t>(e.j),
                                        wires_above,
                                        static_cast<double>(node.z));
  const ChunkCost cost = chunk_cost(e.b, static_cast<std::size_t>(e.j), e.c,
                                    node.r, capacity);
  if (!cost.ok) return std::nullopt;

  const std::int64_t base =
      inst_.wires_before(static_cast<std::size_t>(std::min(e.b + e.c, n_bunches_)));

  // Boundary refinement: push w_extra wires of the first failing bunch
  // onto pair j, still meeting delay, within budget and area.
  std::int64_t w_extra = 0;
  if (opt_.refine_boundary && e.b + e.c < n_bunches_) {
    const auto bb = static_cast<std::size_t>(e.b + e.c);
    const DelayPlan& plan = inst_.plan(bb, static_cast<std::size_t>(e.j));
    if (plan.feasible) {
      const Bunch& bunch = inst_.bunch(bb);
      std::int64_t by_budget = bunch.count;
      if (plan.area_per_wire > 0.0) {
        const double left =
            inst_.repeater_budget() + budget_tol() - node.r - cost.rep_area;
        by_budget = left <= 0.0
                        ? 0
                        : static_cast<std::int64_t>(
                              std::floor(left / plan.area_per_wire));
      }
      const double area_left = capacity + area_tol() - cost.wire_area;
      const double per_wire =
          bunch.length * inst_.pair(static_cast<std::size_t>(e.j)).pitch;
      const auto by_area = static_cast<std::int64_t>(
          std::floor(std::max(0.0, area_left) / per_wire));
      w_extra = std::clamp<std::int64_t>(std::min(by_budget, by_area), 0,
                                         bunch.count);
    }
  }

  // Try the refined break first, then fall back to the plain one.
  for (const std::int64_t w : {w_extra, std::int64_t{0}}) {
    if (free_pack_feasible(inst_, pack_input(e, cost, w))) {
      HeapEntry out = e;
      out.verified = true;
      out.w_extra = w;
      out.key = base + w;
      return out;
    }
    if (w == 0) break;
  }
  return std::nullopt;
}

RankResult DpSolver::assemble(const HeapEntry& best) const {
  RankResult res;
  res.total_wires = inst_.total_wires();
  res.rank = best.key;
  res.normalized = res.total_wires > 0
                       ? static_cast<double>(res.rank) /
                             static_cast<double>(res.total_wires)
                       : 0.0;
  res.all_assigned = true;
  res.prefix_bunches = best.b + best.c;
  res.refined_wires = best.w_extra;

  const Node& node = arena_[static_cast<std::size_t>(best.node)];
  const double wires_above =
      static_cast<double>(inst_.wires_before(static_cast<std::size_t>(best.b)));
  const double capacity =
      inst_.pair_capacity() - inst_.blockage(static_cast<std::size_t>(best.j),
                                        wires_above,
                                        static_cast<double>(node.z));
  const ChunkCost cost = chunk_cost(best.b, static_cast<std::size_t>(best.j),
                                    best.c, node.r, capacity);

  double refine_rep_area = 0.0;
  std::int64_t refine_rep_count = 0;
  if (best.w_extra > 0) {
    const auto bb = static_cast<std::size_t>(best.b + best.c);
    const DelayPlan& plan = inst_.plan(bb, static_cast<std::size_t>(best.j));
    refine_rep_area = static_cast<double>(best.w_extra) * plan.area_per_wire;
    refine_rep_count = best.w_extra * plan.repeaters_per_wire();
  }
  res.repeater_area_used = node.r + cost.rep_area + refine_rep_area;
  res.repeater_count = node.z + cost.rep_count + refine_rep_count;

  if (!opt_.build_trace) return res;

  // Reconstruct the prefix chunks by walking parents: chain[j'] = first
  // bunch of pair j's chunk.
  std::vector<std::int64_t> chunk_first(static_cast<std::size_t>(best.j) + 1, 0);
  {
    std::int64_t b = best.b;
    std::int32_t idx = best.node;
    for (std::int32_t j = best.j; j > 0; --j) {
      chunk_first[static_cast<std::size_t>(j)] = b;
      const Node& nd = arena_[static_cast<std::size_t>(idx)];
      b -= nd.c;
      idx = nd.parent;
    }
    chunk_first[0] = 0;
  }

  res.usage.resize(m_);
  double z_above = 0.0;
  for (std::size_t j = 0; j < m_; ++j) res.usage[j].pair_name = inst_.pair(j).name;

  for (std::size_t j = 0; j <= static_cast<std::size_t>(best.j); ++j) {
    const std::int64_t lo = chunk_first[j];
    const std::int64_t hi = (j == static_cast<std::size_t>(best.j))
                                ? best.b + best.c
                                : chunk_first[j + 1];
    PairUsage& u = res.usage[j];
    u.via_blockage = inst_.blockage(
        j, static_cast<double>(inst_.wires_before(static_cast<std::size_t>(lo))),
        z_above);
    for (std::int64_t t = lo; t < hi; ++t) {
      const auto bb = static_cast<std::size_t>(t);
      const DelayPlan& plan = inst_.plan(bb, j);
      const std::int64_t count = inst_.bunch(bb).count;
      u.wires_meeting_delay += count;
      u.wires_total += count;
      u.wire_area += inst_.wire_area(bb, j, count);
      u.repeaters += count * plan.repeaters_per_wire();
      u.repeater_area += static_cast<double>(count) * plan.area_per_wire;
      res.placements.push_back({bb, j, count, count});
    }
    if (j == static_cast<std::size_t>(best.j) && best.w_extra > 0) {
      const auto bb = static_cast<std::size_t>(best.b + best.c);
      const DelayPlan& plan = inst_.plan(bb, j);
      u.wires_meeting_delay += best.w_extra;
      u.wires_total += best.w_extra;
      u.wire_area += inst_.wire_area(bb, j, best.w_extra);
      u.repeaters += best.w_extra * plan.repeaters_per_wire();
      u.repeater_area += static_cast<double>(best.w_extra) * plan.area_per_wire;
      res.placements.push_back({bb, j, best.w_extra, best.w_extra});
    }
    z_above += static_cast<double>(u.repeaters);
  }

  // Suffix loads from the packer, at per-bunch detail.
  const auto detail =
      free_pack_detailed(inst_, pack_input(best, cost, best.w_extra));
  iarank::util::require(detail.has_value(),
                        "dp_rank: winning candidate failed re-packing");
  for (const BunchPlacement& p : *detail) {
    PairUsage& u = res.usage[p.pair];
    u.wires_total += p.wires;
    u.wire_area += inst_.wire_area(p.bunch, p.pair, p.wires);
    res.placements.push_back(p);
  }
  std::sort(res.placements.begin(), res.placements.end(),
            [](const BunchPlacement& a, const BunchPlacement& b) {
              if (a.bunch != b.bunch) return a.bunch < b.bunch;
              return a.pair < b.pair;
            });

  // Recompute blockage uniformly now that every pair's load is known.
  double wires_above_total = 0.0;
  double reps_above_total = 0.0;
  for (std::size_t j = 0; j < m_; ++j) {
    res.usage[j].via_blockage =
        inst_.blockage(j, wires_above_total, reps_above_total);
    wires_above_total += static_cast<double>(res.usage[j].wires_total);
    reps_above_total += static_cast<double>(res.usage[j].repeaters);
  }
  return res;
}

RankResult DpSolver::solve() {
  util::Stopwatch total;

  // Definition 3 fast path: delay-free packing of the whole WLD is the
  // least constrained assignment (Lemma 1); if it fails, nothing fits.
  if (!free_pack_feasible(inst_, FreePackInput{})) {
    RankResult res;
    res.total_wires = inst_.total_wires();
    res.rank = 0;
    res.normalized = 0.0;
    res.all_assigned = false;
    res.dp = stats_;
    res.dp.seconds = total.seconds();
    publish_stats(res.dp);
    return res;
  }

  {
    TRACE_SPAN("dp.forward");
    util::Stopwatch forward;
    forward_pass();
    stats_.forward_seconds = forward.seconds();
  }
  stats_.arena_nodes = static_cast<std::int64_t>(arena_.size());

  TRACE_SPAN("dp.search");
  while (!heap_.empty()) {
    const HeapEntry e = heap_.top();
    heap_.pop();
    ++stats_.heap_pops;
    if (e.verified) {
      RankResult res = assemble(e);
      res.dp = stats_;
      res.dp.seconds = total.seconds();
      publish_stats(res.dp);
      return res;
    }
    ++stats_.verify_calls;
    const auto verified = verify(e);
    if (verified) heap_.push(*verified);
    if (e.c > 0) {
      // Retry this state's next-lower break point later.
      push_iterator(e.node, static_cast<std::size_t>(e.j), e.b, e.c - 1);
    }
  }

  // Not even delay-free assignment exists: Definition 3.
  RankResult res;
  res.total_wires = inst_.total_wires();
  res.rank = 0;
  res.normalized = 0.0;
  res.all_assigned = false;
  res.dp = stats_;
  res.dp.seconds = total.seconds();
  publish_stats(res.dp);
  return res;
}

const util::FaultSite kSiteDpRank{"core.dp_rank"};

}  // namespace

RankResult dp_rank(const Instance& inst, const DpOptions& options) {
  TRACE_SPAN("dp_rank");
  util::maybe_inject(kSiteDpRank);
  DpSolver solver(inst, options);
  return solver.solve();
}

}  // namespace iarank::core
