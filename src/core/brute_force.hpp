/// \file brute_force.hpp
/// \brief Exhaustive rank oracle for validating the DP engines.
///
/// Enumerates every ordered partition of the bunch list into layer-pair
/// chunks and every delay-met prefix length, checking feasibility from
/// first principles (areas, blockage, budget). Exponential in instance
/// size — use only on tiny instances (B + m <= ~16).
///
/// The oracle assigns whole bunches (no splitting). Build validation
/// instances with one wire per bunch so wire and bunch granularity
/// coincide with the production DP's.

#pragma once

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Exhaustively computes r(alpha). Throws util::Error when the instance
/// is too large to enumerate (guard rail: more than ~2e7 partitions).
[[nodiscard]] RankResult brute_force_rank(const Instance& inst);

}  // namespace iarank::core
