/// \file faultcheck.hpp
/// \brief Deterministic fault-injection sweep: prove every failure path
///        isolates.
///
/// `rank_tool faultcheck <seeds>` drives a small but complete workload —
/// config parse, WLD read, staged instance building, the exact DP with
/// its free-pack verifications — once per (site, seed) with a one-shot
/// fault armed at a seed-derived hit of that site, and asserts the
/// failure model end to end:
///
///  * a fault inside the sweep surfaces as that point's Status (the rest
///    of the grid completes) — never an escaped exception;
///  * a fault in the pre-sweep input stages (config, WLD IO) surfaces as
///    the injected util::Error — never a crash or a wrong category;
///  * after the failure, the very builder that threw mid-stage rebuilds
///    bitwise-identical results — stage caches survive failed computes.
///
/// The workload is fixed and tiny (a 3-point K sweep over a hand-written
/// 5-group WLD at 130 nm), so a 100-seed sweep over every registered
/// site runs in well under a second; CI runs it under ASan+UBSan, which
/// adds the no-leak/no-UB half of the claim.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iarank::core {

struct FaultCheckOptions {
  std::int64_t seeds = 100;      ///< injection runs per site
  std::uint64_t first_seed = 0;  ///< shifts which hit of a site faults
};

/// Per-site verdict counters of one faultcheck run.
struct FaultSiteOutcome {
  std::string site;
  std::int64_t workload_hits = 0;  ///< hits in one clean workload
  std::int64_t injections = 0;     ///< armed runs whose fault fired
  std::int64_t isolated = 0;       ///< surfaced as a sweep point Status
  std::int64_t propagated = 0;     ///< surfaced as a thrown util::Error
  std::int64_t recovered = 0;      ///< post-failure rerun matched baseline
};

struct FaultCheckReport {
  std::vector<FaultSiteOutcome> sites;
  std::vector<std::string> violations;  ///< empty when the model held
  std::int64_t runs = 0;                ///< armed workload executions

  /// Wall time per armed (site, seed) run — exact order statistics over
  /// all runs of this report (includes the recovery rerun each performs).
  double run_seconds_p50 = 0.0;
  double run_seconds_p95 = 0.0;
  double run_seconds_max = 0.0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Runs the sweep. Deterministic for fixed options. Leaves the process
/// injector disarmed on return (also on exceptions).
[[nodiscard]] FaultCheckReport run_faultcheck(
    const FaultCheckOptions& options = {});

}  // namespace iarank::core
