#include "src/core/instance.hpp"

#include <algorithm>
#include <cmath>

#include "src/tech/die.hpp"
#include "src/util/error.hpp"
#include "src/tech/noise.hpp"
#include "src/wld/coarsen.hpp"

namespace iarank::core {

Instance Instance::from_raw(std::vector<Bunch> bunches,
                            std::vector<PairInfo> pairs,
                            std::vector<std::vector<DelayPlan>> plans,
                            double pair_capacity, double repeater_budget,
                            tech::ViaSpec vias) {
  iarank::util::require(!pairs.empty(), "Instance: need >= 1 layer-pair");
  iarank::util::require(plans.size() == bunches.size(),
                        "Instance: plans rows must match bunch count");
  for (const auto& row : plans) {
    iarank::util::require(row.size() == pairs.size(),
                          "Instance: plans columns must match pair count");
  }
  for (std::size_t b = 0; b + 1 < bunches.size(); ++b) {
    iarank::util::require(bunches[b].length >= bunches[b + 1].length,
                          "Instance: bunches must be sorted longest first");
  }
  for (const Bunch& b : bunches) {
    iarank::util::require(b.length > 0.0 && b.count >= 1,
                          "Instance: bunches need positive length and count");
    iarank::util::require(b.target_delay >= 0.0,
                          "Instance: target delay must be >= 0");
  }
  for (const PairInfo& p : pairs) {
    iarank::util::require(p.pitch > 0.0 && p.via_area >= 0.0 &&
                              p.repeater_area >= 0.0,
                          "Instance: invalid pair parameters");
  }
  iarank::util::require(pair_capacity > 0.0, "Instance: pair_capacity must be > 0");
  iarank::util::require(repeater_budget >= 0.0,
                        "Instance: repeater_budget must be >= 0");
  vias.validate();

  Instance inst;
  inst.bunches_ = std::move(bunches);
  inst.pairs_ = std::move(pairs);
  inst.plans_ = std::move(plans);
  inst.pair_capacity_ = pair_capacity;
  inst.repeater_budget_ = repeater_budget;
  inst.vias_ = vias;
  inst.wires_before_.resize(inst.bunches_.size() + 1, 0);
  for (std::size_t b = 0; b < inst.bunches_.size(); ++b) {
    inst.wires_before_[b + 1] = inst.wires_before_[b] + inst.bunches_[b].count;
  }
  inst.total_wires_ = inst.wires_before_.back();
  return inst;
}

std::int64_t Instance::wires_before(std::size_t b) const {
  iarank::util::require(b < wires_before_.size(),
                        "Instance: bunch index out of range");
  return wires_before_[b];
}

double Instance::wire_area(std::size_t b, std::size_t j,
                           std::int64_t wires) const {
  return bunches_[b].length * pairs_[j].pitch * static_cast<double>(wires);
}

const DelayPlan& Instance::plan(std::size_t b, std::size_t j) const {
  iarank::util::require(b < plans_.size() && j < pairs_.size(),
                        "Instance: plan index out of range");
  return plans_[b][j];
}

double Instance::blockage(std::size_t j, double wires_above,
                          double repeaters_above) const {
  return (vias_.vias_per_wire * wires_above +
          vias_.vias_per_repeater * repeaters_above) *
         pairs_[j].via_area;
}

std::int64_t Instance::max_fit(std::size_t b, std::size_t j,
                               std::int64_t offset, double area_used,
                               double wires_above,
                               double repeaters_above) const {
  const Bunch& bunch = bunches_[b];
  const std::int64_t available = bunch.count - offset;
  if (available <= 0) return 0;
  const double free_area =
      pair_capacity_ - area_used - blockage(j, wires_above, repeaters_above);
  const double per_wire = bunch.length * pairs_[j].pitch;
  if (per_wire <= 0.0) return available;
  if (free_area <= 0.0) return 0;
  const auto fit = static_cast<std::int64_t>(std::floor(
      free_area / per_wire * (1.0 + 1e-12)));
  return std::clamp<std::int64_t>(fit, 0, available);
}

Instance build_instance(const DesignSpec& design, const RankOptions& options,
                        const wld::Wld& wld_in_pitches) {
  design.validate();
  options.validate();
  iarank::util::require(!wld_in_pitches.empty(),
                        "build_instance: empty wire length distribution");

  // Die sizing (paper Eq. 6): repeater area inflates the die, gates are
  // redistributed, and the effective gate pitch converts WLD lengths.
  const tech::DieModel die({design.gate_count, design.node.gate_pitch(),
                            options.repeater_fraction});

  // Coarsen in pitch space: optional binning, then bunching.
  wld::Wld coarse = options.bin_window > 0.0
                        ? wld::bin_absolute(wld_in_pitches, options.bin_window)
                        : wld_in_pitches;
  const std::vector<wld::WireGroup> groups =
      wld::bunch(coarse, options.bunch_size);

  // Electrical stack.
  const tech::Architecture arch =
      tech::Architecture::build(design.node, design.arch);
  const tech::RcParams rc{design.node.conductor, options.ild_permittivity,
                          options.miller_factor, options.cap_model};
  const delay::ElectricalStack stack(arch, rc, options.switching);

  // Target delays from the longest *physical* wire.
  const double pitch_to_m = die.effective_gate_pitch();
  const double l_max = wld_in_pitches.max_length() * pitch_to_m;
  const delay::TargetDelay targets(options.target_model,
                                   options.clock_frequency, l_max);

  std::vector<Bunch> bunches;
  bunches.reserve(groups.size());
  for (const wld::WireGroup& g : groups) {
    const double length_m = g.length * pitch_to_m;
    bunches.push_back({length_m, g.count, targets.target(length_m)});
  }

  // A layer-pair offers `pair_capacity_factor` layers' worth of routing
  // area; a via cut blocks that many layers' worth of via area.
  std::vector<PairInfo> pairs;
  pairs.reserve(arch.pair_count());
  const double a_inv = design.node.device.min_inv_area;
  for (std::size_t j = 0; j < arch.pair_count(); ++j) {
    const tech::LayerPair& lp = arch.pair(j);
    const delay::PairElectricals& el = stack.pair(j);
    pairs.push_back({lp.name, lp.geometry.pitch(),
                     options.pair_capacity_factor * lp.geometry.via_area(),
                     el.s_opt, el.s_opt * a_inv});
  }

  std::vector<std::vector<DelayPlan>> plans(
      bunches.size(), std::vector<DelayPlan>(pairs.size()));
  for (std::size_t b = 0; b < bunches.size(); ++b) {
    // Repeater-interval cap: at most floor(l / spacing) stages per wire
    // (paper Section 4.1: insertion stops when repeaters cannot be placed
    // at appropriate intervals).
    std::optional<std::int64_t> max_stages = options.max_stages;
    if (options.min_repeater_spacing > 0.0) {
      const auto by_spacing = static_cast<std::int64_t>(
          std::floor(bunches[b].length / options.min_repeater_spacing));
      const std::int64_t capped = std::max<std::int64_t>(1, by_spacing);
      max_stages = max_stages ? std::min(*max_stages, capped) : capped;
    }
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      // Noise-constrained pairs cannot carry delay-met wires.
      if (options.max_noise_ratio < 1.0 &&
          tech::coupling_noise_ratio(arch.pair(j).geometry, rc) >
              options.max_noise_ratio) {
        continue;
      }
      const auto sol = stack.pair(j).model.stages_to_meet(
          bunches[b].length, bunches[b].target_delay, max_stages);
      DelayPlan& p = plans[b][j];
      if (sol) {
        p.feasible = true;
        p.stages = sol->stages;
        p.delay = sol->delay;
        // Footnote 3: optionally charge the sized driver too.
        const auto cells =
            options.charge_drivers ? sol->stages : sol->stages - 1;
        p.area_per_wire =
            static_cast<double>(cells) * pairs[j].repeater_area;
      }
    }
  }

  return Instance::from_raw(std::move(bunches), std::move(pairs),
                            std::move(plans),
                            options.pair_capacity_factor * die.die_area(),
                            die.repeater_area_budget(), options.vias);
}

}  // namespace iarank::core
