#include "src/core/instance.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iarank::core {

Instance Instance::from_raw(std::vector<Bunch> bunches,
                            std::vector<PairInfo> pairs,
                            std::vector<std::vector<DelayPlan>> plans,
                            double pair_capacity, double repeater_budget,
                            tech::ViaSpec vias) {
  iarank::util::require(!pairs.empty(), "Instance: need >= 1 layer-pair");
  iarank::util::require(plans.size() == bunches.size(),
                        "Instance: plans rows must match bunch count");
  for (const auto& row : plans) {
    iarank::util::require(row.size() == pairs.size(),
                          "Instance: plans columns must match pair count");
  }
  for (std::size_t b = 0; b + 1 < bunches.size(); ++b) {
    iarank::util::require(bunches[b].length >= bunches[b + 1].length,
                          "Instance: bunches must be sorted longest first");
  }
  for (const Bunch& b : bunches) {
    iarank::util::require(b.length > 0.0 && b.count >= 1,
                          "Instance: bunches need positive length and count");
    iarank::util::require(b.target_delay >= 0.0,
                          "Instance: target delay must be >= 0");
  }
  for (const PairInfo& p : pairs) {
    iarank::util::require(p.pitch > 0.0 && p.via_area >= 0.0 &&
                              p.repeater_area >= 0.0,
                          "Instance: invalid pair parameters");
  }
  iarank::util::require(pair_capacity > 0.0, "Instance: pair_capacity must be > 0");
  iarank::util::require(repeater_budget >= 0.0,
                        "Instance: repeater_budget must be >= 0");
  vias.validate();

  Instance inst;
  inst.bunches_ = std::move(bunches);
  inst.pairs_ = std::move(pairs);
  inst.plans_ = std::move(plans);
  inst.pair_capacity_ = pair_capacity;
  inst.repeater_budget_ = repeater_budget;
  inst.vias_ = vias;
  inst.wires_before_.resize(inst.bunches_.size() + 1, 0);
  for (std::size_t b = 0; b < inst.bunches_.size(); ++b) {
    inst.wires_before_[b + 1] = inst.wires_before_[b] + inst.bunches_[b].count;
  }
  inst.total_wires_ = inst.wires_before_.back();
  return inst;
}

std::int64_t Instance::wires_before(std::size_t b) const {
  iarank::util::require(b < wires_before_.size(),
                        "Instance: bunch index out of range");
  return wires_before_[b];
}

double Instance::wire_area(std::size_t b, std::size_t j,
                           std::int64_t wires) const {
  return bunches_[b].length * pairs_[j].pitch * static_cast<double>(wires);
}

const DelayPlan& Instance::plan(std::size_t b, std::size_t j) const {
  iarank::util::require(b < plans_.size() && j < pairs_.size(),
                        "Instance: plan index out of range");
  return plans_[b][j];
}

double Instance::blockage(std::size_t j, double wires_above,
                          double repeaters_above) const {
  return (vias_.vias_per_wire * wires_above +
          vias_.vias_per_repeater * repeaters_above) *
         pairs_[j].via_area;
}

std::int64_t Instance::max_fit(std::size_t b, std::size_t j,
                               std::int64_t offset, double area_used,
                               double wires_above,
                               double repeaters_above) const {
  const Bunch& bunch = bunches_[b];
  const std::int64_t available = bunch.count - offset;
  if (available <= 0) return 0;
  const double free_area =
      pair_capacity_ - area_used - blockage(j, wires_above, repeaters_above);
  const double per_wire = bunch.length * pairs_[j].pitch;
  if (per_wire <= 0.0) return available;
  if (free_area <= 0.0) return 0;
  // Clamp in double space: for degenerate (near-zero) pitches the quotient
  // can exceed the int64 range, and casting such a double is undefined
  // behaviour. `available` is a wire count, so the round-trip through
  // double below is exact.
  const double fit = std::floor(free_area / per_wire * (1.0 + 1e-12));
  if (fit <= 0.0) return 0;
  if (fit >= static_cast<double>(available)) return available;
  return static_cast<std::int64_t>(fit);
}

// build_instance lives in instance_builder.cpp: it is a thin wrapper over
// the staged InstanceBuilder, which caches per-stage results across sweep
// points.

}  // namespace iarank::core
