#include "src/core/instance.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iarank::core {

void Instance::validate_raw(const std::vector<Bunch>& bunches,
                            const std::vector<PairInfo>& pairs,
                            const std::vector<std::vector<DelayPlan>>& plans,
                            double pair_capacity, double repeater_budget) {
  iarank::util::require(!pairs.empty(), "Instance: need >= 1 layer-pair");
  iarank::util::require(plans.size() == bunches.size(),
                        "Instance: plans rows must match bunch count");
  for (const auto& row : plans) {
    iarank::util::require(row.size() == pairs.size(),
                          "Instance: plans columns must match pair count");
  }
  for (std::size_t b = 0; b + 1 < bunches.size(); ++b) {
    iarank::util::require(bunches[b].length >= bunches[b + 1].length,
                          "Instance: bunches must be sorted longest first");
  }
  for (const Bunch& b : bunches) {
    iarank::util::require(b.length > 0.0 && b.count >= 1,
                          "Instance: bunches need positive length and count");
    iarank::util::require(b.target_delay >= 0.0,
                          "Instance: target delay must be >= 0");
  }
  for (const PairInfo& p : pairs) {
    iarank::util::require(p.pitch > 0.0 && p.via_area >= 0.0 &&
                              p.repeater_area >= 0.0,
                          "Instance: invalid pair parameters");
  }
  iarank::util::require(pair_capacity > 0.0, "Instance: pair_capacity must be > 0");
  iarank::util::require(repeater_budget >= 0.0,
                        "Instance: repeater_budget must be >= 0");
}

void Instance::finish_raw(double pair_capacity, double repeater_budget,
                          tech::ViaSpec vias) {
  pair_capacity_ = pair_capacity;
  repeater_budget_ = repeater_budget;
  vias_ = vias;
  wires_before_.assign(bunches_.size() + 1, 0);
  for (std::size_t b = 0; b < bunches_.size(); ++b) {
    wires_before_[b + 1] = wires_before_[b] + bunches_[b].count;
  }
  total_wires_ = wires_before_.back();
  build_prefix_tables();
}

Instance Instance::from_raw(std::vector<Bunch> bunches,
                            std::vector<PairInfo> pairs,
                            std::vector<std::vector<DelayPlan>> plans,
                            double pair_capacity, double repeater_budget,
                            tech::ViaSpec vias) {
  validate_raw(bunches, pairs, plans, pair_capacity, repeater_budget);
  vias.validate();

  Instance inst;
  inst.bunches_ = std::move(bunches);
  inst.pairs_ = std::move(pairs);
  inst.plans_ = std::move(plans);
  inst.finish_raw(pair_capacity, repeater_budget, vias);
  return inst;
}

void Instance::assign_raw(const std::vector<Bunch>& bunches,
                          const std::vector<PairInfo>& pairs,
                          const std::vector<std::vector<DelayPlan>>& plans,
                          double pair_capacity, double repeater_budget,
                          tech::ViaSpec vias) {
  validate_raw(bunches, pairs, plans, pair_capacity, repeater_budget);
  vias.validate();

  // Copy-assignment element-wise: outer and inner vectors keep their
  // buffers when the shapes match, so a warm rebuild touches no heap.
  bunches_ = bunches;
  pairs_ = pairs;
  plans_ = plans;
  finish_raw(pair_capacity, repeater_budget, vias);
}

void Instance::build_prefix_tables() {
  const std::size_t n = bunches_.size();
  const std::size_t m = pairs_.size();
  prefix_stride_ = n + 1;
  prefix_wire_area_.assign(m * prefix_stride_, 0.0);
  prefix_rep_area_.assign(m * prefix_stride_, 0.0);
  prefix_rep_count_.assign(m * prefix_stride_, 0);
  next_infeasible_.assign(m * prefix_stride_, n);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t base = j * prefix_stride_;
    const double pitch = pairs_[j].pitch;
    for (std::size_t b = 0; b < n; ++b) {
      const DelayPlan& plan = plans_[b][j];
      const std::int64_t count = bunches_[b].count;
      const double wire =
          bunches_[b].length * pitch * static_cast<double>(count);
      // Infeasible plans contribute zero repeater cost: delay-met chunk
      // queries never span them (next_infeasible_ guards), and the
      // wire-area prefix is plan-independent so it stays usable across
      // them (the reference DP's delay-free spans rely on that).
      prefix_wire_area_[base + b + 1] = prefix_wire_area_[base + b] + wire;
      prefix_rep_area_[base + b + 1] =
          prefix_rep_area_[base + b] +
          (plan.feasible ? static_cast<double>(count) * plan.area_per_wire
                         : 0.0);
      prefix_rep_count_[base + b + 1] =
          prefix_rep_count_[base + b] +
          (plan.feasible ? count * plan.repeaters_per_wire() : 0);
    }
    // Backward pass: first infeasible bunch at or after b.
    for (std::size_t b = n; b-- > 0;) {
      next_infeasible_[base + b] =
          plans_[b][j].feasible ? next_infeasible_[base + b + 1] : b;
    }
  }

  // SoA lanes for the data-oriented DP kernel: one field per array,
  // [pair][bunch] with the same stride as the prefix tables and a
  // sentinel row at index n (infeasible, zero cost) so chunk-boundary
  // reads at b + c == n stay in bounds.
  plan_feasible_.assign(m * prefix_stride_, 0);
  plan_area_per_wire_.assign(m * prefix_stride_, 0.0);
  plan_reps_per_wire_.assign(m * prefix_stride_, 0);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t base = j * prefix_stride_;
    for (std::size_t b = 0; b < n; ++b) {
      const DelayPlan& plan = plans_[b][j];
      plan_feasible_[base + b] = plan.feasible ? 1 : 0;
      plan_area_per_wire_[base + b] = plan.area_per_wire;
      plan_reps_per_wire_[base + b] = plan.repeaters_per_wire();
    }
  }
  bunch_count_.assign(n + 1, 0);
  bunch_length_.assign(n + 1, 0.0);
  for (std::size_t b = 0; b < n; ++b) {
    bunch_count_[b] = bunches_[b].count;
    bunch_length_[b] = bunches_[b].length;
  }
}

std::int64_t Instance::max_feasible_chunk(std::size_t j, std::size_t b,
                                          double wire_limit,
                                          double rep_limit) const {
  const std::size_t base = j * prefix_stride_;
  const std::size_t cap = std::min(first_infeasible(j, b), bunches_.size());
  const double w0 = prefix_wire_area_[base + b];
  const double r0 = prefix_rep_area_[base + b];
  // Invariant: chunk [b, b+lo) satisfies both limits, [b, b+hi+1) does not
  // (or hi is the feasibility cap). The prefix sums are nondecreasing, so
  // the predicate is monotone in c.
  std::int64_t lo = 0;
  std::int64_t hi = static_cast<std::int64_t>(cap - b);
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    const auto e = base + b + static_cast<std::size_t>(mid);
    if (prefix_wire_area_[e] - w0 <= wire_limit &&
        prefix_rep_area_[e] - r0 <= rep_limit) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::int64_t Instance::wires_before(std::size_t b) const {
  iarank::util::require(b < wires_before_.size(),
                        "Instance: bunch index out of range");
  return wires_before_[b];
}

double Instance::wire_area(std::size_t b, std::size_t j,
                           std::int64_t wires) const {
  return bunches_[b].length * pairs_[j].pitch * static_cast<double>(wires);
}

const DelayPlan& Instance::plan(std::size_t b, std::size_t j) const {
  iarank::util::require(b < plans_.size() && j < pairs_.size(),
                        "Instance: plan index out of range");
  return plans_[b][j];
}

double Instance::blockage(std::size_t j, double wires_above,
                          double repeaters_above) const {
  return (vias_.vias_per_wire * wires_above +
          vias_.vias_per_repeater * repeaters_above) *
         pairs_[j].via_area;
}

std::int64_t Instance::max_fit(std::size_t b, std::size_t j,
                               std::int64_t offset, double area_used,
                               double wires_above,
                               double repeaters_above) const {
  const Bunch& bunch = bunches_[b];
  const std::int64_t available = bunch.count - offset;
  if (available <= 0) return 0;
  const double free_area =
      pair_capacity_ - area_used - blockage(j, wires_above, repeaters_above);
  const double per_wire = bunch.length * pairs_[j].pitch;
  if (per_wire <= 0.0) return available;
  if (free_area <= 0.0) return 0;
  // Clamp in double space: for degenerate (near-zero) pitches the quotient
  // can exceed the int64 range, and casting such a double is undefined
  // behaviour. `available` is a wire count, so the round-trip through
  // double below is exact.
  const double fit = std::floor(free_area / per_wire * (1.0 + 1e-12));
  if (fit <= 0.0) return 0;
  if (fit >= static_cast<double>(available)) return available;
  return static_cast<std::int64_t>(fit);
}

// build_instance lives in instance_builder.cpp: it is a thin wrapper over
// the staged InstanceBuilder, which caches per-stage results across sweep
// points.

}  // namespace iarank::core
