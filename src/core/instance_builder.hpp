/// \file instance_builder.hpp
/// \brief Staged, cached construction of rank-computation instances.
///
/// `build_instance` recomputes everything — coarsening, die sizing, the
/// electrical stack and the (bunch x pair) delay-plan matrix — on every
/// call, even though a Table 4 sweep changes a single RankOptions field
/// per point. The builder splits the construction into four cacheable
/// stages, each keyed on exactly the option fields it reads:
///
///  | stage   | output                          | cache key                              |
///  |---------|---------------------------------|----------------------------------------|
///  | coarsen | binned + bunched WLD groups     | (bin_window, bunch_size)               |
///  | die     | die model (paper Eq. 6)         | (repeater_fraction)                    |
///  | stack   | RC params + electrical stack    | (K, M, cap_model, switching a, b)      |
///  | plans   | target-delay bunches + delay-   | stack key + die key + coarsen key +    |
///  |         | plan matrix                     | (target_model, C, spacing, max_stages, |
///  |         |                                 |  charge_drivers, max_noise_ratio)      |
///
/// The design and the WLD are fixed per builder (the architecture is
/// derived once from the design). A K-column sweep therefore recomputes
/// only the stack and plans stages; a C-column sweep only the plans
/// stage; repeating an already-seen option set costs four cache hits
/// plus assembly. Cached builds are bitwise-identical to cold ones: the
/// stages run the very same arithmetic in the same order, and a hit
/// returns a previously computed value unchanged.
///
/// Thread-safety: `build` may be called concurrently (the sweep engine
/// does). Stage lookup/compute is serialized under one mutex — assembly
/// is microseconds next to the rank DP consuming the instance.

#pragma once

#include <cstdint>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/core/instance.hpp"
#include "src/delay/stack.hpp"
#include "src/tech/architecture.hpp"
#include "src/tech/die.hpp"
#include "src/tech/rc.hpp"
#include "src/util/lru_cache.hpp"
#include "src/wld/wld.hpp"

namespace iarank::core {

/// Hit/miss counters and miss wall-time of one builder stage.
struct StageCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  double seconds = 0.0;  ///< wall time spent computing misses
};

/// Aggregate profile of one InstanceBuilder (all builds so far).
struct BuildProfile {
  StageCounters coarsen;  ///< WLD binning + bunching
  StageCounters die;      ///< die sizing (Eq. 6)
  StageCounters stack;    ///< RC extraction + electrical stack
  StageCounters plans;    ///< targets + (bunch x pair) delay-plan matrix
  std::int64_t builds = 0;
  double total_seconds = 0.0;  ///< wall time inside build(), all stages
};

class InstanceBuilder {
 public:
  /// Binds the builder to one design and one WLD (in gate pitches).
  /// Validates both and derives the architecture. Throws util::Error on
  /// invalid design or empty WLD.
  InstanceBuilder(DesignSpec design, wld::Wld wld_in_pitches);

  /// Assembles the instance for `options`, reusing every cached stage
  /// whose key is unchanged. Thread-safe. Throws util::Error on invalid
  /// options.
  [[nodiscard]] Instance build(const RankOptions& options);

  /// build() into caller-owned storage: identical resulting instance,
  /// but every vector is copy-assigned so a reused `out` with matching
  /// shapes performs zero heap allocation — the per-point form the hot
  /// sweep/exploration drivers use. Thread-safe.
  void build_into(const RankOptions& options, Instance& out);

  /// Snapshot of the cache/timing counters.
  [[nodiscard]] BuildProfile profile() const;

  /// FNV-1a digest of the fixed inputs (design + WLD), computed once at
  /// construction. Two builders with equal fingerprints produce bitwise
  /// identical instances for equal options; the sweep checkpoint key is
  /// built on this.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  // Stage keys: tuples of exactly the option fields each stage reads.
  using CoarsenKey = std::tuple<double, std::int64_t>;
  using DieKey = double;
  using StackKey = std::tuple<double, double, int, double, double>;
  using PlanKey = std::tuple<StackKey, DieKey, CoarsenKey, int, double,
                             double, std::int64_t, bool, double>;

  struct StackStage {
    tech::RcParams rc;
    delay::ElectricalStack stack;
  };
  struct PlanStage {
    std::vector<Bunch> bunches;
    std::vector<std::vector<DelayPlan>> plans;
  };

  [[nodiscard]] const std::vector<wld::WireGroup>& coarsen_stage(
      const RankOptions& options);
  [[nodiscard]] const tech::DieModel& die_stage(const RankOptions& options);
  [[nodiscard]] const StackStage& stack_stage(const RankOptions& options);
  [[nodiscard]] const PlanStage& plan_stage(
      const RankOptions& options, const std::vector<wld::WireGroup>& groups,
      const tech::DieModel& die, const StackStage& electrical);

  DesignSpec design_;
  wld::Wld wld_;
  tech::Architecture arch_;  ///< derived once; design is fixed per builder
  double wld_max_pitches_ = 0.0;
  std::uint64_t fingerprint_ = 0;

  mutable std::mutex mutex_;
  std::vector<PairInfo> pairs_scratch_;  ///< per-build assembly, under mutex_
  util::LruCache<CoarsenKey, std::vector<wld::WireGroup>> coarsen_cache_{8};
  util::LruCache<DieKey, tech::DieModel> die_cache_{32};
  util::LruCache<StackKey, StackStage> stack_cache_{32};
  util::LruCache<PlanKey, PlanStage> plan_cache_{64};
  BuildProfile profile_;
};

}  // namespace iarank::core
