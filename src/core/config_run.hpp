/// \file config_run.hpp
/// \brief Builds a complete rank-computation setup from a `key = value`
///        configuration — the backbone of the rank_tool CLI and of
///        scripted experiments.
///
/// All keys are optional; omitted keys keep the calibrated paper-regime
/// baseline (core::paper_baseline). Recognized keys:
///
///   node = 180nm | 130nm | 90nm | /path/to/custom.tech
///   gates = <int>
///   paper_regime = 0 | 1            (default 1; 0 = raw physical node)
///   regime.die_scale, regime.device_ideality, regime.repeater_cell_f2,
///   regime.min_spacing_pitches, regime.capacity_factor
///   arch.global_pairs, arch.semi_global_pairs, arch.local_pairs,
///   arch.ild_height_factor
///   ild_permittivity, miller_factor, clock_hz, repeater_fraction
///   cap_model = parallel_plate | sakurai
///   target_model = linear | sqrt | quadratic | uniform
///   bunch_size, bin_window, refine_boundary (0|1)
///   vias_per_wire, vias_per_repeater
///   wld.rent_p, wld.rent_k, wld.fanout   (Davis parameters)
///   wld.file = /path/to/distribution.wld (overrides Davis generation)

#pragma once

#include <string>

#include "src/core/engine.hpp"
#include "src/core/paper_setup.hpp"
#include "src/util/config.hpp"

namespace iarank::core {

/// Everything needed to run: design, options, and the WLD source.
struct RunSpec {
  DesignSpec design;
  RankOptions options;
  WldParams wld;          ///< Davis parameters (used when wld_file empty)
  std::string wld_file;   ///< optional explicit distribution
};

/// Parses a RunSpec; throws util::Error on unknown enum values or invalid
/// parameters (via the usual validators).
[[nodiscard]] RunSpec run_spec_from_config(const util::Config& config);

/// Applies the RankOptions-level keys of `config` (Table 4 parameters and
/// modelling options — everything below "Architecture overrides" in the
/// key list above) onto `options`. Shared by run_spec_from_config and the
/// rank server's per-request override path; does NOT validate — callers
/// run options.validate() once all overlays are applied.
void apply_rank_options(const util::Config& config, RankOptions& options);

/// Resolves the WLD: loads wld_file when set, else generates Davis.
[[nodiscard]] wld::Wld resolve_wld(const RunSpec& spec);

}  // namespace iarank::core
