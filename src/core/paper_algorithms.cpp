#include "src/core/paper_algorithms.hpp"

#include "src/util/error.hpp"

namespace iarank::core {

WireAssignResult paper_wire_assign(const Instance& inst, std::size_t i1_prime,
                                   std::size_t i2_prime, std::size_t i_total,
                                   std::size_t j, double r3, double z_r1) {
  iarank::util::require(j < inst.pair_count(),
                        "paper_wire_assign: pair out of range");
  iarank::util::require(i1_prime + i2_prime <= i_total &&
                            i_total <= inst.bunch_count(),
                        "paper_wire_assign: inconsistent wire counts");
  WireAssignResult out;

  // Step 1: B_j = A_d - A_{v,j-1} - A_{u,j-1}.
  const double a_v = inst.vias().vias_per_wire *
                     static_cast<double>(inst.wires_before(i1_prime)) *
                     inst.pair(j).via_area;
  const double a_u = inst.vias().vias_per_repeater * z_r1 *
                     inst.pair(j).via_area;
  double b_j = inst.pair_capacity() - a_v - a_u;
  const double tol = inst.pair_capacity() * 1e-9;

  // Steps 2-12: assign wires i1'+1 .. i1'+i2' with repeater insertion.
  double repeater_area = 0.0;
  for (std::size_t p = i1_prime; p < i1_prime + i2_prime; ++p) {
    const Bunch& bunch = inst.bunch(p);
    // Step 4: wire_area = l_p * (W_j + S_j), per wire of the bunch.
    const double wire_area = inst.wire_area(p, j, bunch.count);
    // Step 5: area check.
    if (wire_area > b_j + tol) return out;  // return(0)
    // Steps 6-7: assign wire p; B_j -= wire_area.
    b_j -= wire_area;
    out.wire_area += wire_area;

    // Steps 8-11: incremental insertion until D_p <= d_p or the repeater
    // area r3 is exhausted. The precomputed plan encodes the fixed point
    // of the "compute D_p; add one repeater" loop: the target is reached
    // exactly when stages == plan.stages (never, if !plan.feasible).
    const DelayPlan& plan = inst.plan(p, j);
    const double per_repeater = inst.pair(j).repeater_area;
    // "repeaters cannot be placed at appropriate intervals": for a wire
    // whose plan is infeasible the loop would never satisfy D <= d; the
    // spacing rule (emulated by a stage cap) terminates it.
    constexpr std::int64_t kEtaCap = 4096;
    for (std::int64_t w = 0; w < bunch.count; ++w) {
      const std::int64_t needed = plan.feasible ? plan.stages : kEtaCap;
      for (std::int64_t eta = 1; eta < needed; ++eta) {
        if (repeater_area + per_repeater > r3 + r3 * 1e-9 + 1e-30) {
          return out;  // step 11: repeater area exhausted -> return(0)
        }
        repeater_area += per_repeater;
        ++out.repeaters;
      }
      if (!plan.feasible) return out;  // target never reached
    }
  }
  out.repeater_area = repeater_area;  // the paper's r_2

  // Step 13: the remaining i - i1' - i2' wires go on this pair ignoring
  // delay; only the area matters.
  for (std::size_t p = i1_prime + i2_prime; p < i_total; ++p) {
    const double wire_area = inst.wire_area(p, j, inst.bunch(p).count);
    if (wire_area > b_j + tol) return out;
    b_j -= wire_area;
    out.wire_area += wire_area;
  }

  out.feasible = true;  // step 14: return(1)
  return out;
}

bool paper_greedy_assign(const Instance& inst, std::size_t i,
                         std::size_t j_plus_1, double z_total) {
  iarank::util::require(i <= inst.bunch_count(),
                        "paper_greedy_assign: bunch index out of range");
  const std::size_t m = inst.pair_count();
  if (i == inst.bunch_count()) return true;  // nothing to assign
  if (j_plus_1 >= m) return false;

  const double tol = inst.pair_capacity() * 1e-9;
  const double wires_above = static_cast<double>(inst.wires_before(i));

  // Steps 3-4: start at the bottommost pair with the smallest wire.
  std::size_t q = m;          // 1-based from the top, so q == m is bottom
  std::size_t p = inst.bunch_count();  // p-1 is the current (smallest) bunch
  std::int64_t assigned_free = 0;      // the paper's (p - i) via term

  // Step 5: while (q > j+1) — pairs j_plus_1..m-1 in 0-based terms.
  while (q > j_plus_1) {
    const std::size_t pair = q - 1;
    // Steps 1-2: B_q = A_d - ((z_r1 + z_r2) + v * i) * v_a.
    const double b_q =
        inst.pair_capacity() -
        (inst.vias().vias_per_repeater * z_total +
         inst.vias().vias_per_wire * wires_above) *
            inst.pair(pair).via_area;

    // Steps 7-14: pack bunches while A_{w,q} + A_{v,q} <= B_q. The paper
    // charges the free wires assigned so far ((p - i) * v * v_a) against
    // the current pair — a conservative accounting kept verbatim here.
    double a_w = 0.0;
    while (p > i) {
      const std::size_t bunch = p - 1;
      const double wire_area =
          inst.wire_area(bunch, pair, inst.bunch(bunch).count);
      const double a_v =
          inst.vias().vias_per_wire *
          static_cast<double>(assigned_free + inst.bunch(bunch).count) *
          inst.pair(pair).via_area;
      if (a_w + wire_area + a_v > b_q + tol) break;
      a_w += wire_area;  // steps 10-12
      assigned_free += inst.bunch(bunch).count;
      --p;
      if (p == i) return true;  // step 14
    }
    --q;  // step 15
  }
  return false;  // step 16
}

}  // namespace iarank::core
