/// \file optimizer.hpp
/// \brief Rank-driven interconnect architecture optimization.
///
/// The paper's Section 6 names "direct optimization of interconnect
/// architectures according to our proposed metric" as future work; this
/// module implements it as exhaustive search over layer-pair allocations
/// (how many global / semi-global / local pairs to build) and, optionally,
/// over the ILD aspect factor. The objective is the rank; ties prefer
/// fewer total pairs (cheaper BEOL), then fewer global pairs.

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/engine.hpp"
#include "src/util/status.hpp"

namespace iarank::core {

/// Search-space bounds.
struct OptimizerOptions {
  int min_total_pairs = 2;
  int max_total_pairs = 6;
  int max_global_pairs = 3;
  int max_semi_global_pairs = 4;
  int max_local_pairs = 3;
  /// ILD height factors to try (1.0 only by default).
  std::vector<double> ild_height_factors = {1.0};
  /// Candidates evaluated concurrently on the shared util::ThreadPool.
  /// The evaluation order, tie-breaking and result are identical for any
  /// value (candidates are enumerated first, then scanned in grid order).
  unsigned threads = 1;
};

/// One evaluated architecture. A candidate whose evaluation threw keeps
/// the failure in `status` (result value-initialized) and is skipped by
/// the winner scan.
struct ArchCandidate {
  tech::ArchitectureSpec spec;
  RankResult result;
  util::Status status;
};

/// Search outcome: every evaluated candidate plus the winner.
struct OptimizerResult {
  std::vector<ArchCandidate> evaluated;
  ArchCandidate best;
  std::int64_t failed_candidates = 0;  ///< candidates with non-ok status
};

/// Exhaustively evaluates the allocation grid and returns the best
/// architecture under the rank metric. A throwing candidate is recorded
/// in its status and skipped; throws util::Error only when the grid is
/// empty or every candidate failed.
[[nodiscard]] OptimizerResult optimize_architecture(
    const tech::TechNode& node, std::int64_t gate_count,
    const RankOptions& options, const wld::Wld& wld_in_pitches,
    const OptimizerOptions& search = {});

/// Minimum-layer-count search (after Venkatesan et al., the paper's
/// reference [13]): the smallest layer-pair stack whose rank reaches
/// `target_normalized`, scanning total pair counts ascending within the
/// same bounds.
struct MinPairsResult {
  bool achievable = false;   ///< false when no stack in bounds reaches it
  tech::ArchitectureSpec spec;
  RankResult result;
};

[[nodiscard]] MinPairsResult min_pairs_for_rank(
    const tech::TechNode& node, std::int64_t gate_count,
    const RankOptions& options, const wld::Wld& wld_in_pitches,
    double target_normalized, const OptimizerOptions& search = {});

}  // namespace iarank::core
