/// \file paper_setup.hpp
/// \brief The calibrated "paper regime" used to reproduce Table 4.
///
/// The paper's printed inputs are not sufficient to reproduce its numbers:
/// with a literal 12.6F gate pitch the 1M-gate die is 2.7 mm^2, on which
/// every wire trivially meets a 500 MHz target and the rank is 1.0 at
/// every Table 4 point. Reverse-engineering Table 4's structure pins the
/// operating regime instead (full derivation in EXPERIMENTS.md):
///
///  * The R column is *exactly* linear in the repeater budget, which
///    requires a constant repeater count per wire on a given layer-pair.
///    That happens precisely when the target delay is quadratic in length
///    — i.e. the paper's d_i = (l_i/l_max)(1/f_c), described as the
///    "normalized (with respect to length) delay", is read as delay per
///    unit length, making the absolute target d_i * l_i. Then
///    eta_j = ceil(a r̄_j c̄_j / sigma) independent of l.
///  * Short wires can only meet such targets when the driver intrinsic
///    terms are negligible — the Otten-Brayton "planning" abstraction.
///    We scale r_o and c_o/c_p down together (preserving their ratio, so
///    s_opt,j stays physical).
///  * The C column's plateaus need wires to become *unbufferable* as the
///    clock rises: the paper's own stopping rule "repeaters cannot be
///    placed at appropriate intervals" — a minimum repeater spacing —
///    produces exactly that, quantized at integer gate-pitch lengths.
///  * The die must be large enough that mid-distribution wires need
///    repeaters at 500 MHz: a ~3x scale on the gate pitch (40 mm^2 die)
///    puts eta(global) = 1 (free) and eta(semi-global/local) = 3-5.
///
/// Everything else (Table 3 geometry, Davis WLD at p = 0.6, Eq. 6 die
/// sizing, bunch size 10000) follows the paper literally.

#pragma once

#include <string>

#include "src/core/options.hpp"

namespace iarank::core {

/// Calibration knobs of the reproduced regime (defaults reproduce the
/// Table 4 shapes; see EXPERIMENTS.md for the calibration trail).
struct PaperRegime {
  /// Multiplies the ITRS 12.6F gate pitch (die area scales quadratically).
  /// 6.0 puts the 1M-gate 130 nm die at ~160 mm^2 (ITRS-2001 MPU class).
  double die_scale = 6.0;
  /// Scales r_o, c_o and c_p jointly; s_opt is invariant to it.
  double device_ideality = 1e-4;
  /// Repeater cell area per unit size, in units of F^2.
  double repeater_cell_f2 = 8.0;
  /// Minimum repeater spacing, in effective gate pitches (at R = 0.4).
  double min_spacing_pitches = 0.25;
  /// Routing capacity of a pair as a multiple of die area.
  double capacity_factor = 1.33;
};

/// A design + options pair ready for compute_rank / sweeps.
struct PaperSetup {
  DesignSpec design;
  RankOptions options;
};

/// Builds the Table 2 baseline design in the calibrated regime.
/// `node_name` is "180nm", "130nm" (the paper's reported node) or "90nm".
[[nodiscard]] PaperSetup paper_baseline(const std::string& node_name = "130nm",
                                        std::int64_t gate_count = 1000000,
                                        const PaperRegime& regime = {});

/// Regime knobs rescaled for a different gate count, keeping the design
/// at the 1M-gate calibration's operating point: constant N x die_scale^2
/// (so targets/quadratic-delay ratios hold), constant budget/demand
/// (repeater cell scaled by 1M/N) and constant capacity/demand
/// (capacity factor scaled by N/1M). Pass the result to paper_baseline
/// when evaluating designs much smaller or larger than 1M gates.
[[nodiscard]] PaperRegime scaled_regime(std::int64_t gate_count);

}  // namespace iarank::core
