#include "src/core/engine.hpp"

#include "src/core/greedy_rank.hpp"
#include "src/tech/node.hpp"
#include "src/util/trace.hpp"
#include "src/wld/davis.hpp"

namespace iarank::core {

wld::Wld default_wld(const DesignSpec& design, const WldParams& params) {
  const wld::DavisModel model(
      {design.gate_count, params.rent_p, params.rent_k, params.avg_fanout});
  return model.generate();
}

DesignSpec baseline_design(const std::string& node_name,
                           std::int64_t gate_count) {
  DesignSpec design;
  design.node = tech::node_by_name(node_name);
  design.arch = tech::ArchitectureSpec{};  // 1 global + 2 semi + 1 local
  design.gate_count = gate_count;
  return design;
}

RankResult compute_rank(const DesignSpec& design, const RankOptions& options,
                        const wld::Wld& wld_in_pitches) {
  TRACE_SPAN("compute_rank");
  const Instance inst = build_instance(design, options, wld_in_pitches);
  DpOptions dp;
  dp.refine_boundary = options.refine_boundary;
  return dp_rank(inst, dp);
}

RankResult compute_rank(const DesignSpec& design, const RankOptions& options) {
  return compute_rank(design, options, default_wld(design));
}

RankResult compute_rank_greedy(const DesignSpec& design,
                               const RankOptions& options,
                               const wld::Wld& wld_in_pitches) {
  const Instance inst = build_instance(design, options, wld_in_pitches);
  return greedy_rank(inst);
}

}  // namespace iarank::core
