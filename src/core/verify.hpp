/// \file verify.hpp
/// \brief Independent certificate checker for rank results.
///
/// dp_rank emits a full assignment certificate (RankResult::placements);
/// this module re-validates it against the Instance from first principles,
/// without sharing any code with the DP:
///
///  * every wire placed exactly once;
///  * order constraint: longer bunches never sit below shorter ones
///    (paper Section 3, assumption 3);
///  * prefix property: the delay-met wires are exactly the `rank` longest
///    (Definitions 1-2), each on a pair whose plan is feasible;
///  * repeater budget respected (Definition 2's area budget);
///  * per-pair wiring area + via blockage within the routing capacity.
///
/// On instances too large for the brute-force oracle, this is the
/// independent evidence that a reported rank is *achieved* by a concrete
/// legal embedding (it certifies feasibility; optimality is the DP's and
/// the oracle tests' job).

#pragma once

#include <string>

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Verdict of the checker: ok == true, or the first violated invariant.
struct VerifyOutcome {
  bool ok = false;
  std::string failure;  ///< human-readable reason when !ok
};

/// Checks `result.placements` (and the headline fields it implies)
/// against `inst`. A result without placements fails with a clear reason.
[[nodiscard]] VerifyOutcome verify_placements(const Instance& inst,
                                              const RankResult& result);

}  // namespace iarank::core
