#include "src/core/instance_builder.hpp"

#include <cmath>
#include <optional>
#include <utility>

#include "src/core/checkpoint.hpp"
#include "src/delay/target.hpp"
#include "src/tech/noise.hpp"
#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"
#include "src/wld/coarsen.hpp"

namespace iarank::core {

namespace {

/// Per-stage LRU hit/miss counters, mirrored into the process registry so
/// `--metrics` sees them without plumbing a BuildProfile anywhere. The
/// totals are deterministic across thread counts (stage lookups are
/// serialized under the builder mutex and keyed only by option values).
struct StageMetrics {
  iarank::util::Counter& hits;
  iarank::util::Counter& misses;
};

StageMetrics stage_metrics(const char* stage) {
  const std::string base = std::string("iarank_builder_") + stage;
  return {iarank::util::MetricsRegistry::counter(base + "_hits_total"),
          iarank::util::MetricsRegistry::counter(base + "_misses_total")};
}

StageMetrics kCoarsenMetrics = stage_metrics("coarsen");
StageMetrics kDieMetrics = stage_metrics("die");
StageMetrics kStackMetrics = stage_metrics("stack");
StageMetrics kPlansMetrics = stage_metrics("plans");

iarank::util::Counter& kBuilds = iarank::util::MetricsRegistry::counter(
    "iarank_builder_builds_total", "instances assembled by InstanceBuilder");

// Fault-injection sites, one per cacheable stage plus the per-build
// assembly. The stage sites sit inside the compute lambdas (the miss
// path), so `rank_tool faultcheck` exercises exactly the case that must
// not corrupt a cache: an exception thrown mid-compute.
const util::FaultSite kSiteCoarsen{"core.instance_builder.coarsen"};
const util::FaultSite kSiteDie{"core.instance_builder.die"};
const util::FaultSite kSiteStack{"core.instance_builder.stack"};
const util::FaultSite kSitePlans{"core.instance_builder.plans"};
const util::FaultSite kSiteAssemble{"core.instance_builder.assemble"};

/// Validates the fixed inputs before any member that derives from them
/// is initialized (arch_ and wld_max_pitches_ both need a valid design
/// and a non-empty WLD).
tech::Architecture make_arch(const DesignSpec& design, const wld::Wld& wld) {
  design.validate();
  iarank::util::require(!wld.empty(),
                        "build_instance: empty wire length distribution");
  return tech::Architecture::build(design.node, design.arch);
}

/// Cache lookup wrapper that books the hit/miss and miss wall-time into
/// `counters`, mirroring the counts into the process metric registry.
template <typename Cache, typename Key, typename Compute>
const auto& cached(Cache& cache, const Key& key, StageCounters& counters,
                   StageMetrics& metrics, Compute&& compute) {
  bool hit = false;
  util::Stopwatch timer;
  const auto& value =
      cache.get_or_compute(key, std::forward<Compute>(compute), &hit);
  if (hit) {
    ++counters.hits;
    metrics.hits.inc();
  } else {
    ++counters.misses;
    metrics.misses.inc();
    counters.seconds += timer.seconds();
  }
  return value;
}

}  // namespace

InstanceBuilder::InstanceBuilder(DesignSpec design, wld::Wld wld_in_pitches)
    : design_(std::move(design)),
      wld_(std::move(wld_in_pitches)),
      arch_(make_arch(design_, wld_)),
      wld_max_pitches_(wld_.max_length()) {
  util::Digest d;
  digest_design(d, design_);
  digest_wld(d, wld_);
  fingerprint_ = d.value();
}

const std::vector<wld::WireGroup>& InstanceBuilder::coarsen_stage(
    const RankOptions& options) {
  const CoarsenKey key{options.bin_window, options.bunch_size};
  return cached(coarsen_cache_, key, profile_.coarsen, kCoarsenMetrics, [&] {
    TRACE_SPAN("builder.coarsen");
    util::maybe_inject(kSiteCoarsen);
    const wld::Wld coarse =
        options.bin_window > 0.0
            ? wld::bin_absolute(wld_, options.bin_window)
            : wld_;
    return wld::bunch(coarse, options.bunch_size);
  });
}

const tech::DieModel& InstanceBuilder::die_stage(const RankOptions& options) {
  const DieKey key = options.repeater_fraction;
  return cached(die_cache_, key, profile_.die, kDieMetrics, [&] {
    TRACE_SPAN("builder.die");
    util::maybe_inject(kSiteDie);
    // Die sizing (paper Eq. 6): repeater area inflates the die, gates are
    // redistributed, and the effective gate pitch converts WLD lengths.
    return tech::DieModel({design_.gate_count, design_.node.gate_pitch(),
                           options.repeater_fraction});
  });
}

const InstanceBuilder::StackStage& InstanceBuilder::stack_stage(
    const RankOptions& options) {
  const StackKey key{options.ild_permittivity, options.miller_factor,
                     static_cast<int>(options.cap_model), options.switching.a,
                     options.switching.b};
  return cached(stack_cache_, key, profile_.stack, kStackMetrics, [&] {
    TRACE_SPAN("builder.stack");
    util::maybe_inject(kSiteStack);
    const tech::RcParams rc{design_.node.conductor, options.ild_permittivity,
                            options.miller_factor, options.cap_model};
    return StackStage{rc, delay::ElectricalStack(arch_, rc, options.switching)};
  });
}

const InstanceBuilder::PlanStage& InstanceBuilder::plan_stage(
    const RankOptions& options, const std::vector<wld::WireGroup>& groups,
    const tech::DieModel& die, const StackStage& electrical) {
  const StackKey stack_key{options.ild_permittivity, options.miller_factor,
                           static_cast<int>(options.cap_model),
                           options.switching.a, options.switching.b};
  const PlanKey key{
      stack_key,
      options.repeater_fraction,
      CoarsenKey{options.bin_window, options.bunch_size},
      static_cast<int>(options.target_model),
      options.clock_frequency,
      options.min_repeater_spacing,
      options.max_stages ? *options.max_stages : std::int64_t{-1},
      options.charge_drivers,
      options.max_noise_ratio};
  return cached(plan_cache_, key, profile_.plans, kPlansMetrics, [&] {
    TRACE_SPAN("builder.plans");
    util::maybe_inject(kSitePlans);
    // Target delays from the longest *physical* wire.
    const double pitch_to_m = die.effective_gate_pitch();
    const double l_max = wld_max_pitches_ * pitch_to_m;
    const delay::TargetDelay targets(options.target_model,
                                     options.clock_frequency, l_max);

    PlanStage result;
    result.bunches.reserve(groups.size());
    for (const wld::WireGroup& g : groups) {
      const double length_m = g.length * pitch_to_m;
      result.bunches.push_back({length_m, g.count, targets.target(length_m)});
    }

    const double a_inv = design_.node.device.min_inv_area;
    result.plans.assign(result.bunches.size(),
                        std::vector<DelayPlan>(arch_.pair_count()));

    // Noise gate hoisted out of the bunch loop: the coupling ratio
    // depends only on pair geometry and RC, so one evaluation per pair
    // replaces one per (bunch, pair) — bitwise-identical plans.
    std::vector<char> noise_blocked(arch_.pair_count(), 0);
    if (options.max_noise_ratio < 1.0) {
      for (std::size_t j = 0; j < arch_.pair_count(); ++j) {
        noise_blocked[j] =
            tech::coupling_noise_ratio(arch_.pair(j).geometry, electrical.rc) >
                    options.max_noise_ratio
                ? 1
                : 0;
      }
    }

    // Bunches are independent (each writes only result.plans[b]), so the
    // stages_to_meet grid fans out over the shared pool. Writes land at
    // fixed indices and every input is frozen, so the table is
    // bitwise-identical at any worker count. Chunked claiming keeps
    // per-index atomic traffic negligible for cheap rows.
    const auto plan_bunch = [&](std::size_t b) {
      // Repeater-interval cap: at most floor(l / spacing) stages per wire
      // (paper Section 4.1: insertion stops when repeaters cannot be
      // placed at appropriate intervals).
      std::optional<std::int64_t> max_stages = options.max_stages;
      if (options.min_repeater_spacing > 0.0) {
        const auto by_spacing = static_cast<std::int64_t>(std::floor(
            result.bunches[b].length / options.min_repeater_spacing));
        const std::int64_t capped = std::max<std::int64_t>(1, by_spacing);
        max_stages = max_stages ? std::min(*max_stages, capped) : capped;
      }
      for (std::size_t j = 0; j < arch_.pair_count(); ++j) {
        // Noise-constrained pairs cannot carry delay-met wires.
        if (noise_blocked[j] != 0) continue;
        const auto sol = electrical.stack.pair(j).model.stages_to_meet(
            result.bunches[b].length, result.bunches[b].target_delay,
            max_stages);
        DelayPlan& p = result.plans[b][j];
        if (sol) {
          p.feasible = true;
          p.stages = sol->stages;
          p.delay = sol->delay;
          // Footnote 3: optionally charge the sized driver too.
          const auto cells =
              options.charge_drivers ? sol->stages : sol->stages - 1;
          p.area_per_wire = static_cast<double>(cells) *
                            (electrical.stack.pair(j).s_opt * a_inv);
        }
      }
    };
    util::ThreadPool::shared().parallel_for(result.bunches.size(), 0,
                                            /*grain=*/8, plan_bunch);
    return result;
  });
}

Instance InstanceBuilder::build(const RankOptions& options) {
  Instance inst;
  build_into(options, inst);
  return inst;
}

void InstanceBuilder::build_into(const RankOptions& options, Instance& out) {
  TRACE_SPAN("builder.build");
  options.validate();
  const std::scoped_lock lock(mutex_);
  const util::ScopedTimer timer(&profile_.total_seconds);

  const std::vector<wld::WireGroup>& groups = coarsen_stage(options);
  const tech::DieModel& die = die_stage(options);
  const StackStage& electrical = stack_stage(options);
  const PlanStage& planned = plan_stage(options, groups, die, electrical);
  util::maybe_inject(kSiteAssemble);

  // A layer-pair offers `pair_capacity_factor` layers' worth of routing
  // area; a via cut blocks that many layers' worth of via area. Assembled
  // per build into the scratch (capacity retained across builds) — it is
  // the only capacity-factor-dependent piece and costs a handful of
  // multiplies.
  pairs_scratch_.resize(arch_.pair_count());
  const double a_inv = design_.node.device.min_inv_area;
  for (std::size_t j = 0; j < arch_.pair_count(); ++j) {
    const tech::LayerPair& lp = arch_.pair(j);
    const delay::PairElectricals& el = electrical.stack.pair(j);
    PairInfo& p = pairs_scratch_[j];
    p.name = lp.name;  // string assign reuses capacity on rebuild
    p.pitch = lp.geometry.pitch();
    p.via_area = options.pair_capacity_factor * lp.geometry.via_area();
    p.s_opt = el.s_opt;
    p.repeater_area = el.s_opt * a_inv;
  }

  out.assign_raw(planned.bunches, pairs_scratch_, planned.plans,
                 options.pair_capacity_factor * die.die_area(),
                 die.repeater_area_budget(), options.vias);

  ++profile_.builds;
  kBuilds.inc();
}

BuildProfile InstanceBuilder::profile() const {
  const std::scoped_lock lock(mutex_);
  return profile_;
}

Instance build_instance(const DesignSpec& design, const RankOptions& options,
                        const wld::Wld& wld_in_pitches) {
  return InstanceBuilder(design, wld_in_pitches).build(options);
}

}  // namespace iarank::core
