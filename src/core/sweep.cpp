#include "src/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>

#include "src/core/checkpoint.hpp"
#include "src/util/error.hpp"
#include "src/util/event_log.hpp"
#include "src/util/journal.hpp"
#include "src/util/metrics.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"
#include "src/util/units.hpp"

namespace iarank::core {

namespace units = iarank::util::units;

std::string to_string(SweepParameter p) {
  switch (p) {
    case SweepParameter::kIldPermittivity:
      return "K (ILD permittivity)";
    case SweepParameter::kMillerFactor:
      return "M (Miller coupling factor)";
    case SweepParameter::kClockFrequency:
      return "C (target clock frequency)";
    case SweepParameter::kRepeaterFraction:
      return "R (max repeater fraction)";
  }
  return "unknown";
}

SweepParameter sweep_parameter_from_string(std::string_view token) {
  if (token == "K") return SweepParameter::kIldPermittivity;
  if (token == "M") return SweepParameter::kMillerFactor;
  if (token == "C") return SweepParameter::kClockFrequency;
  if (token == "R") return SweepParameter::kRepeaterFraction;
  throw util::Error("sweep: unknown parameter '" + std::string(token) +
                    "' (expected K, M, C or R)");
}

namespace {

// Point outcomes are deterministic (a point either evaluates or throws
// regardless of scheduling), so ok/failed/resumed totals are identical
// across thread counts.
util::Counter& kSweepRuns = util::MetricsRegistry::counter(
    "iarank_sweep_runs_total", "sweep_parameter invocations");
util::Counter& kSweepPointsOk = util::MetricsRegistry::counter(
    "iarank_sweep_points_ok_total", "sweep points evaluated successfully");
util::Counter& kSweepPointsFailed = util::MetricsRegistry::counter(
    "iarank_sweep_points_failed_total",
    "sweep points whose evaluation threw");
util::Counter& kSweepPointsResumed = util::MetricsRegistry::counter(
    "iarank_sweep_points_resumed_total",
    "sweep points recovered from a checkpoint journal");
util::Histogram& kSweepPointSeconds = util::MetricsRegistry::histogram(
    "iarank_sweep_point_seconds", util::Histogram::duration_bounds(),
    "wall time per evaluated sweep point");

RankOptions with_value(const RankOptions& base, SweepParameter parameter,
                       double v) {
  RankOptions opt = base;
  switch (parameter) {
    case SweepParameter::kIldPermittivity:
      opt.ild_permittivity = v;
      break;
    case SweepParameter::kMillerFactor:
      opt.miller_factor = v;
      break;
    case SweepParameter::kClockFrequency:
      opt.clock_frequency = v;
      break;
    case SweepParameter::kRepeaterFraction:
      opt.repeater_fraction = v;
      break;
  }
  return opt;
}

}  // namespace

SweepResult sweep_parameter(InstanceBuilder& builder, const RankOptions& base,
                            SweepParameter parameter,
                            const std::vector<double>& values,
                            const SweepRunOptions& run) {
  iarank::util::require(run.threads >= 1,
                        "sweep_parameter: threads must be >= 1");
  TRACE_SPAN("sweep");
  kSweepRuns.inc();
  util::Stopwatch total;
  auto& events = util::EventLog::instance();
  if (events.enabled()) {
    util::Json fields;
    fields["parameter"] = to_string(parameter);
    fields["points"] = static_cast<std::int64_t>(values.size());
    fields["threads"] = static_cast<std::int64_t>(run.threads);
    events.emit(util::Severity::kInfo, "sweep.start", std::move(fields));
  }
  const BuildProfile before = builder.profile();

  SweepResult out;
  out.parameter = parameter;
  out.points.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.points[i].value = values[i];
  }

  // Checkpoint/resume: recover every journaled point whose index and
  // value still match the grid (the key digest already pins the whole
  // configuration; the per-point value check is belt and braces against
  // a hand-edited journal).
  std::unique_ptr<util::CheckpointJournal> journal;
  std::vector<char> done(values.size(), 0);
  std::atomic<std::int64_t> checkpoint_nanos{0};
  if (!run.checkpoint_path.empty()) {
    util::Stopwatch open_timer;
    util::CheckpointJournal::Options jopt;
    jopt.fsync_each_append = run.fsync_checkpoint;
    journal = std::make_unique<util::CheckpointJournal>(
        run.checkpoint_path,
        sweep_checkpoint_key(builder.fingerprint(), base, parameter, values),
        jopt);
    for (const auto& [index, payload] : journal->entries()) {
      if (index < 0 || static_cast<std::size_t>(index) >= values.size()) {
        continue;
      }
      const auto i = static_cast<std::size_t>(index);
      SweepPoint point;
      if (!decode_sweep_point(payload, point)) continue;
      if (std::bit_cast<std::uint64_t>(point.value) !=
          std::bit_cast<std::uint64_t>(values[i])) {
        continue;
      }
      out.points[i] = std::move(point);
      done[i] = 1;
      ++out.profile.resumed_points;
    }
    checkpoint_nanos.fetch_add(
        static_cast<std::int64_t>(open_timer.seconds() * 1e9),
        std::memory_order_relaxed);
  }

  // Points are independent and write disjoint slots; the pool propagates
  // the lowest-index exception. Each evaluation mirrors compute_rank, but
  // through the shared builder so unchanged stages are cache hits. A
  // throwing evaluation is captured as the point's status — one bad point
  // must not discard the rest of the grid. Journal appends stay outside
  // the catch: losing the checkpoint file is a run-level failure.
  std::atomic<std::int64_t> failed_nanos{0};

  // Warm-start slot: the witness of the most recent completed lower-index
  // point. A point copies the slot out under the lock and solves against
  // the copy, so a concurrent update never races the solve. Whether a
  // point finds a witness here depends on completion order — which is why
  // the pruned/warm counters are scheduling-dependent — but the solve's
  // result does not (warm start is prune-only).
  struct WarmSlot {
    std::mutex mutex;
    std::int64_t index = -1;
    DpWitness witness;
  } warm;

  util::ThreadPool::shared().parallel_for(
      values.size(), run.threads, [&](std::size_t i) {
        if (done[i]) return;
        TRACE_SPAN("sweep.point");
        SweepPoint& point = out.points[i];
        util::Stopwatch point_timer;
        try {
          const RankOptions opt = with_value(base, parameter, values[i]);
          // Reused per worker thread: a warm rebuild with unchanged
          // shapes (the common case — one parameter moving) allocates
          // nothing, and neither does the thread-local DP kernel behind
          // dp_rank_into. Per-pair usage/placement traces are skipped —
          // sweep consumers (CSV, server, figure tables, checkpoint
          // resume) read the headline fields only — which keeps the
          // steady-state point evaluation heap-silent (DESIGN.md
          // Section 10.6).
          thread_local Instance inst;
          builder.build_into(opt, inst);
          DpOptions dp;
          dp.build_trace = false;
          dp.refine_boundary = opt.refine_boundary;
          DpWitness warm_witness;
          if (run.warm_start) {
            const std::scoped_lock lock(warm.mutex);
            if (warm.index >= 0 &&
                warm.index < static_cast<std::int64_t>(i) &&
                warm.witness.valid()) {
              warm_witness = warm.witness;
              dp.warm_start = &warm_witness;
            }
          }
          dp_rank_into(inst, dp, point.result);
          point.status = util::Status::make_ok();
          if (run.warm_start && point.result.all_assigned &&
              point.result.witness.valid()) {
            const std::scoped_lock lock(warm.mutex);
            if (static_cast<std::int64_t>(i) > warm.index) {
              warm.index = static_cast<std::int64_t>(i);
              warm.witness = point.result.witness;
            }
          }
        } catch (const std::exception& e) {
          point.result = RankResult{};
          point.status = util::Status::from_exception(e);
          // Wasted work is invisible in dp_seconds (a failed point has no
          // result); tally it separately so operators see the cost of
          // failures, not just their count.
          failed_nanos.fetch_add(
              static_cast<std::int64_t>(point_timer.seconds() * 1e9),
              std::memory_order_relaxed);
        }
        kSweepPointSeconds.observe(point_timer.seconds());
        if (events.enabled()) {
          util::Json fields;
          fields["index"] = static_cast<std::int64_t>(i);
          fields["value"] = values[i];
          fields["ok"] = point.status.ok();
          fields["seconds"] = point_timer.seconds();
          events.emit(util::Severity::kDebug, "sweep.point",
                      std::move(fields));
        }
        if (journal) {
          util::Stopwatch append_timer;
          journal->append(static_cast<std::int64_t>(i),
                          encode_sweep_point(point));
          checkpoint_nanos.fetch_add(
              static_cast<std::int64_t>(append_timer.seconds() * 1e9),
              std::memory_order_relaxed);
        }
      });

  // Aggregate observability. The DP counters are sums of deterministic
  // per-point values, so they too are identical across thread counts.
  const BuildProfile after = builder.profile();
  out.profile.build = after;
  out.profile.build.coarsen.hits -= before.coarsen.hits;
  out.profile.build.coarsen.misses -= before.coarsen.misses;
  out.profile.build.coarsen.seconds -= before.coarsen.seconds;
  out.profile.build.die.hits -= before.die.hits;
  out.profile.build.die.misses -= before.die.misses;
  out.profile.build.die.seconds -= before.die.seconds;
  out.profile.build.stack.hits -= before.stack.hits;
  out.profile.build.stack.misses -= before.stack.misses;
  out.profile.build.stack.seconds -= before.stack.seconds;
  out.profile.build.plans.hits -= before.plans.hits;
  out.profile.build.plans.misses -= before.plans.misses;
  out.profile.build.plans.seconds -= before.plans.seconds;
  out.profile.build.builds -= before.builds;
  out.profile.build.total_seconds -= before.total_seconds;
  for (const SweepPoint& p : out.points) {
    if (!p.status.ok()) {
      ++out.profile.failed_points;
      continue;
    }
    out.profile.dp_seconds += p.result.dp.seconds;
    out.profile.dp_arena_nodes += p.result.dp.arena_nodes;
    out.profile.dp_heap_pops += p.result.dp.heap_pops;
    out.profile.dp_verify_calls += p.result.dp.verify_calls;
    out.profile.dp_pruned_entries += p.result.dp.pruned_entries;
    if (p.result.dp.warm_start_hit) ++out.profile.dp_warm_start_hits;
    out.profile.dp_max_frontier =
        std::max(out.profile.dp_max_frontier, p.result.dp.max_frontier);
  }
  out.profile.threads = run.threads;
  out.profile.failed_point_seconds =
      static_cast<double>(failed_nanos.load(std::memory_order_relaxed)) / 1e9;
  kSweepPointsOk.inc(static_cast<std::int64_t>(values.size()) -
                     out.profile.failed_points);
  kSweepPointsFailed.inc(out.profile.failed_points);
  kSweepPointsResumed.inc(out.profile.resumed_points);
  out.profile.checkpoint_seconds =
      static_cast<double>(checkpoint_nanos.load(std::memory_order_relaxed)) /
      1e9;
  out.profile.total_seconds = total.seconds();
  if (events.enabled()) {
    util::Json fields;
    fields["ok"] = static_cast<std::int64_t>(values.size()) -
                   out.profile.failed_points;
    fields["failed"] = out.profile.failed_points;
    fields["resumed"] = out.profile.resumed_points;
    fields["seconds"] = out.profile.total_seconds;
    events.emit(util::Severity::kInfo, "sweep.done", std::move(fields));
  }
  return out;
}

SweepResult sweep_parameter(InstanceBuilder& builder, const RankOptions& base,
                            SweepParameter parameter,
                            const std::vector<double>& values,
                            unsigned threads) {
  SweepRunOptions run;
  run.threads = threads;
  return sweep_parameter(builder, base, parameter, values, run);
}

SweepResult sweep_parameter(const DesignSpec& design, const RankOptions& base,
                            const wld::Wld& wld_in_pitches,
                            SweepParameter parameter,
                            const std::vector<double>& values,
                            const SweepRunOptions& run) {
  InstanceBuilder builder(design, wld_in_pitches);
  return sweep_parameter(builder, base, parameter, values, run);
}

SweepResult sweep_parameter(const DesignSpec& design, const RankOptions& base,
                            const wld::Wld& wld_in_pitches,
                            SweepParameter parameter,
                            const std::vector<double>& values,
                            unsigned threads) {
  SweepRunOptions run;
  run.threads = threads;
  return sweep_parameter(design, base, wld_in_pitches, parameter, values, run);
}

std::vector<double> table4_k_values() {
  // K = 3.9, 3.8, ..., 1.8 — 22 points. Integer numerators keep every
  // entry exact-by-rounding instead of drifting with a running sum.
  std::vector<double> values;
  values.reserve(22);
  for (int i = 0; i < 22; ++i) {
    values.push_back(static_cast<double>(39 - i) / 10.0);
  }
  return values;
}

std::vector<double> table4_m_values() {
  // M = 2.00, 1.95, ..., 1.00 — 21 points.
  std::vector<double> values;
  values.reserve(21);
  for (int i = 0; i < 21; ++i) {
    values.push_back(static_cast<double>(200 - 5 * i) / 100.0);
  }
  return values;
}

std::vector<double> table4_c_values() {
  // C = 0.5, 0.6, ..., 1.7 GHz — 13 points.
  std::vector<double> values;
  values.reserve(13);
  for (int i = 0; i < 13; ++i) {
    values.push_back(static_cast<double>(5 + i) / 10.0 * units::GHz);
  }
  return values;
}

std::vector<double> table4_r_values() {
  return {0.1, 0.2, 0.3, 0.4, 0.5};
}

double value_reaching_rank(const SweepResult& sweep,
                           double target_normalized) {
  const auto& pts = sweep.points;
  if (pts.empty()) return std::numeric_limits<double>::quiet_NaN();

  // Sweep shape: K/M/R improve rank along the sweep order (the met region
  // is a suffix), C degrades it (the met region is a prefix).
  const bool rank_decreases =
      pts.back().result.normalized < pts.front().result.normalized;

  if (!rank_decreases) {
    // First point at or above the target; interpolate from its unmet
    // predecessor.
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (pts[i].result.normalized >= target_normalized) {
        if (i == 0) return pts[0].value;
        const double r0 = pts[i - 1].result.normalized;
        const double r1 = pts[i].result.normalized;
        if (r1 == r0) return pts[i].value;
        const double t = (target_normalized - r0) / (r1 - r0);
        return pts[i - 1].value + t * (pts[i].value - pts[i - 1].value);
      }
    }
    return std::numeric_limits<double>::quiet_NaN();
  }

  // Rank decreases along the sweep: walking forward, find where the met
  // prefix ends and interpolate across that crossing. (The old code took
  // the "first met point" here, which is always point 0 of a C sweep —
  // it reported the smallest swept clock no matter the target.)
  if (pts.front().result.normalized < target_normalized) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    if (pts[i + 1].result.normalized < target_normalized) {
      const double r0 = pts[i].result.normalized;
      const double r1 = pts[i + 1].result.normalized;
      if (r1 == r0) return pts[i].value;
      const double t = (target_normalized - r0) / (r1 - r0);
      return pts[i].value + t * (pts[i + 1].value - pts[i].value);
    }
  }
  return pts.back().value;  // every point meets the target
}

}  // namespace iarank::core
