#include "src/core/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iarank::core {

namespace units = iarank::util::units;

std::string to_string(SweepParameter p) {
  switch (p) {
    case SweepParameter::kIldPermittivity:
      return "K (ILD permittivity)";
    case SweepParameter::kMillerFactor:
      return "M (Miller coupling factor)";
    case SweepParameter::kClockFrequency:
      return "C (target clock frequency)";
    case SweepParameter::kRepeaterFraction:
      return "R (max repeater fraction)";
  }
  return "unknown";
}

namespace {

RankOptions with_value(const RankOptions& base, SweepParameter parameter,
                       double v) {
  RankOptions opt = base;
  switch (parameter) {
    case SweepParameter::kIldPermittivity:
      opt.ild_permittivity = v;
      break;
    case SweepParameter::kMillerFactor:
      opt.miller_factor = v;
      break;
    case SweepParameter::kClockFrequency:
      opt.clock_frequency = v;
      break;
    case SweepParameter::kRepeaterFraction:
      opt.repeater_fraction = v;
      break;
  }
  return opt;
}

}  // namespace

SweepResult sweep_parameter(const DesignSpec& design, const RankOptions& base,
                            const wld::Wld& wld_in_pitches,
                            SweepParameter parameter,
                            const std::vector<double>& values,
                            unsigned threads) {
  iarank::util::require(threads >= 1, "sweep_parameter: threads must be >= 1");
  SweepResult out;
  out.parameter = parameter;
  out.points.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.points[i].value = values[i];
  }

  if (threads == 1 || values.size() <= 1) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.points[i].result = compute_rank(
          design, with_value(base, parameter, values[i]), wld_in_pitches);
    }
    return out;
  }

  // Static interleaved partition: point i goes to worker i % threads.
  std::exception_ptr failure;
  std::mutex failure_mutex;
  std::vector<std::thread> workers;
  const unsigned worker_count =
      std::min<unsigned>(threads, static_cast<unsigned>(values.size()));
  workers.reserve(worker_count);
  for (unsigned w = 0; w < worker_count; ++w) {
    workers.emplace_back([&, w]() {
      try {
        for (std::size_t i = w; i < values.size(); i += worker_count) {
          out.points[i].result = compute_rank(
              design, with_value(base, parameter, values[i]), wld_in_pitches);
        }
      } catch (...) {
        const std::scoped_lock lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (failure) std::rethrow_exception(failure);
  return out;
}

namespace {

std::vector<double> descending(double from, double to, double step) {
  std::vector<double> values;
  for (double v = from; v >= to - 1e-9; v -= step) values.push_back(v);
  return values;
}

}  // namespace

std::vector<double> table4_k_values() { return descending(3.9, 1.8, 0.1); }

std::vector<double> table4_m_values() { return descending(2.0, 1.0, 0.05); }

std::vector<double> table4_c_values() {
  std::vector<double> values;
  for (double f = 0.5; f <= 1.7 + 1e-9; f += 0.1) {
    values.push_back(f * units::GHz);
  }
  return values;
}

std::vector<double> table4_r_values() {
  return {0.1, 0.2, 0.3, 0.4, 0.5};
}

double value_reaching_rank(const SweepResult& sweep,
                           double target_normalized) {
  // Points are ordered as swept (K and M descending, C and R ascending);
  // find the first crossing of the target and interpolate linearly.
  const auto& pts = sweep.points;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].result.normalized >= target_normalized) {
      if (i == 0) return pts[0].value;
      const double r0 = pts[i - 1].result.normalized;
      const double r1 = pts[i].result.normalized;
      if (r1 == r0) return pts[i].value;
      const double t = (target_normalized - r0) / (r1 - r0);
      return pts[i - 1].value + t * (pts[i].value - pts[i - 1].value);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace iarank::core
