/// \file paper_algorithms.hpp
/// \brief Literal, step-by-step implementations of the paper's Algorithm 4
///        (wire_assign, the M' oracle) and Algorithm 5 (greedy_assign, the
///        M'' oracle), kept as close to the printed pseudocode as C++
///        allows — one loop per pseudocode line, the paper's variable
///        names in comments.
///
/// The production engines use vectorized/closed-form equivalents
/// (core/dp_rank computes chunk costs from the precomputed plan table;
/// core/free_pack packs with per-bunch arithmetic). This module exists to
/// demonstrate the paper's procedures as printed and to cross-validate
/// the production code against them: tests assert that, on the shared
/// Instance representation, the literal procedures and the production
/// ones agree.

#pragma once

#include <cstdint>

#include "src/core/instance.hpp"

namespace iarank::core {

/// Result of the literal Algorithm 4.
struct WireAssignResult {
  bool feasible = false;       ///< the paper's boolean M'(.)
  double repeater_area = 0.0;  ///< r_2: repeater area actually used
  std::int64_t repeaters = 0;  ///< repeater count inserted in this pair
  double wire_area = 0.0;      ///< wiring area consumed in this pair
};

/// Algorithm 4 (wire_assign): assign wires (bunches) i1'..i1'+i2'-1 to
/// layer-pair j meeting delay within repeater area r3, then wires
/// i1'+i2'..i-1 to the same pair ignoring delay. `z_r1` is the repeater
/// count already used above (drives A_{u,j-1}); the paper's B_j
/// initialization (step 1) is the pair capacity minus via blockage.
/// Wire-at-a-time, repeater-increment-at-a-time, as printed.
[[nodiscard]] WireAssignResult paper_wire_assign(const Instance& inst,
                                                 std::size_t i1_prime,
                                                 std::size_t i2_prime,
                                                 std::size_t i_total,
                                                 std::size_t j, double r3,
                                                 double z_r1);

/// Algorithm 5 (greedy_assign): assign bunches i..n-1 to layer-pairs
/// j+1..m-1 bottom-up ignoring delay, with via blockage from the z
/// repeaters and the wires above (steps 1-2 of the pseudocode). Returns
/// the paper's boolean M''(.). Whole-bunch granularity, exactly as the
/// printed wire-at-a-time loop.
[[nodiscard]] bool paper_greedy_assign(const Instance& inst, std::size_t i,
                                       std::size_t j_plus_1, double z_total);

}  // namespace iarank::core
