/// \file checkpoint.hpp
/// \brief Digest keys and record codecs for journaled checkpoint/resume.
///
/// A checkpoint journal (util/journal.hpp) is only resumable against the
/// exact work that wrote it. This module provides both halves of that
/// contract for the batch drivers:
///
///  * keys — FNV-1a digests over everything that determines a run's
///    results (design, WLD, options, swept parameter, value grid; or the
///    selfcheck seed range). Doubles enter as IEEE-754 bit patterns, so
///    the key is exactly as strict as the bitwise-identity guarantee the
///    resumed results themselves carry.
///  * codecs — lossless textual encodings of per-point results
///    (SweepPoint, ScenarioCheck). Doubles round-trip as 16-hex-digit bit
///    patterns; strings as hex bytes. decode_* returns false on any
///    malformation instead of throwing, so a stale or hand-edited record
///    degrades to "recompute this point".

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/selfcheck.hpp"
#include "src/core/sweep.hpp"
#include "src/util/digest.hpp"
#include "src/wld/wld.hpp"

namespace iarank::core {

/// Feeds every field of `design` (node geometry, device, conductor,
/// architecture, gate count) into `d`.
void digest_design(util::Digest& d, const DesignSpec& design);

/// Feeds every (length, count) group of `wld` into `d`.
void digest_wld(util::Digest& d, const wld::Wld& wld);

/// Feeds every RankOptions field into `d` (doubles as bit patterns).
void digest_rank_options(util::Digest& d, const RankOptions& options);

/// Journal key of one sweep: builder fingerprint (design + WLD) x base
/// options x swept parameter x exact value grid.
[[nodiscard]] std::uint64_t sweep_checkpoint_key(
    std::uint64_t builder_fingerprint, const RankOptions& base,
    SweepParameter parameter, const std::vector<double>& values);

/// Journal key of one selfcheck sweep: seed range only (the scenario
/// sampler is deterministic per seed by contract).
[[nodiscard]] std::uint64_t selfcheck_checkpoint_key(std::int64_t count,
                                                     std::uint64_t first_seed);

/// Lossless one-line encoding of a completed sweep point (value, status,
/// full RankResult including usage and placements).
[[nodiscard]] std::string encode_sweep_point(const SweepPoint& point);

/// Inverse of encode_sweep_point; false on malformed input.
[[nodiscard]] bool decode_sweep_point(std::string_view text,
                                      SweepPoint& point);

/// Lossless one-line encoding of one checked selfcheck scenario.
[[nodiscard]] std::string encode_scenario_check(const ScenarioCheck& check);

/// Inverse of encode_scenario_check; false on malformed input.
[[nodiscard]] bool decode_scenario_check(std::string_view text,
                                         ScenarioCheck& check);

}  // namespace iarank::core
