/// \file dp_rank.hpp
/// \brief Exact rank computation by dynamic programming.
///
/// Semantically equivalent to the paper's Algorithms 1-3 / Equation 1, but
/// reformulated for exactness and speed (DESIGN.md Section 3.2):
///
///  * A feasible embedding is a partition of the (longest-first) bunch list
///    into contiguous chunks, one per layer-pair top-down, with a prefix of
///    delay-met bunches. The DP state after filling pairs 0..j-1 with
///    bunches 0..b-1 (all meeting delay) is the Pareto frontier of
///    (repeater area used, repeater count used) — repeater area is budget,
///    repeater count drives via blockage below. No discretization of
///    repeater area is needed: for a given assignment the paper's
///    "incremental insertion until the target is met" fixes the repeater
///    area exactly (delay::WireDelayModel::stages_to_meet).
///
///  * Once the prefix breaks, the rest is delay-free packing, which
///    bottom-up greedy solves optimally (paper Lemma 1; core/free_pack).
///
///  * Break candidates are verified best-first (highest rank first), so
///    the expensive suffix-packing check runs only a handful of times on
///    typical instances.
///
/// The result is the exact optimum at bunch granularity — the paper's own
/// granularity, with rank error bounded by the largest bunch (Section
/// 5.1). The optional boundary refinement extends the prefix into the
/// first failing bunch wire-by-wire when the leftover budget allows.

#pragma once

#include <memory>

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Engine knobs.
struct DpOptions {
  bool build_trace = true;       ///< reconstruct per-pair usage
  bool refine_boundary = true;   ///< wire-level extension into failing bunch

  /// Prune unverified heap pushes whose optimistic key cannot beat the
  /// best verified entry already in the heap. Exact: verified entries win
  /// ties, so a pruned entry could never pop before the search terminates.
  /// Off only for the differential property test.
  bool enable_pruning = true;

  /// Witness of a previously solved (nearby) instance. The solver verifies
  /// it against THIS instance first; when feasible, its key becomes a
  /// strict lower bound pruning unverified pushes. The warm candidate is
  /// never itself returnable, and only entries the search would never
  /// examine are pruned, so the result — rank, witness, placements — is
  /// bitwise-identical whether or not the warm start hits (DESIGN.md
  /// Section 10.4).
  const DpWitness* warm_start = nullptr;

  /// Validate the sorted-frontier invariant (r strictly ascending, z
  /// strictly descending) after every bucket the forward sweep line
  /// materializes. Test-only: O(frontier) per bucket.
  bool check_invariants = false;
};

/// Reusable DP kernel (the data-oriented v2 engine). One kernel owns a
/// monotonic pool backing every per-solve structure — arena lanes,
/// frontier lanes, wake lists, the search heap — which is reset (not
/// freed) between solves, so a kernel reused across sweep points performs
/// zero steady-state heap allocation (DESIGN.md Section 10.6). Results
/// are bitwise-identical to the retained scalar reference path
/// (dp_rank_reference) and independent of whether a kernel is fresh or
/// reused. Not thread-safe: use one kernel per thread (the free dp_rank()
/// wrapper keeps one per thread automatically).
class DpKernel {
 public:
  DpKernel();
  ~DpKernel();
  DpKernel(DpKernel&&) noexcept;
  DpKernel& operator=(DpKernel&&) noexcept;
  DpKernel(const DpKernel&) = delete;
  DpKernel& operator=(const DpKernel&) = delete;

  [[nodiscard]] RankResult solve(const Instance& inst,
                                 const DpOptions& options = {});

  /// Like solve(), but reuses `out`'s existing buffer capacities (usage,
  /// placements, witness) instead of returning a fresh result — the
  /// zero-allocation variant for hot sweep loops.
  void solve_into(const Instance& inst, const DpOptions& options,
                  RankResult& out);

  /// Pool accounting of this kernel (mirrored into the iarank_pool_* /
  /// iarank_dp_arena_bytes metrics after every solve).
  struct PoolStats {
    std::int64_t arena_bytes = 0;      ///< pool bytes drawn by the last solve
    std::int64_t high_water_bytes = 0; ///< lifetime max of arena_bytes
    std::int64_t chunks_allocated = 0; ///< pool chunks ever heap-allocated
  };
  [[nodiscard]] PoolStats pool_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Computes r(alpha) for the instance. Never throws on well-formed
/// instances; infeasible assignment (Definition 3) yields rank 0 with
/// all_assigned = false. Solves on a thread-local DpKernel, so repeated
/// calls from the same thread (every sweep/optimizer/server worker)
/// reuse the kernel's pool automatically.
[[nodiscard]] RankResult dp_rank(const Instance& inst,
                                 const DpOptions& options = {});

/// dp_rank() with caller-owned result storage (thread-local kernel +
/// solve_into): the per-point form the sweep engine uses to keep its
/// steady state allocation-free.
void dp_rank_into(const Instance& inst, const DpOptions& options,
                  RankResult& out);

/// The retained scalar reference path: the pre-v2 nested-vector solver,
/// kept verbatim (dp_rank_reference.cpp) as the oracle the data-oriented
/// kernel is pinned against bitwise — including the deterministic effort
/// counters. Test-only by intent; publishes no metrics.
[[nodiscard]] RankResult dp_rank_reference(const Instance& inst,
                                           const DpOptions& options = {});

}  // namespace iarank::core
