/// \file dp_rank.hpp
/// \brief Exact rank computation by dynamic programming.
///
/// Semantically equivalent to the paper's Algorithms 1-3 / Equation 1, but
/// reformulated for exactness and speed (DESIGN.md Section 3.2):
///
///  * A feasible embedding is a partition of the (longest-first) bunch list
///    into contiguous chunks, one per layer-pair top-down, with a prefix of
///    delay-met bunches. The DP state after filling pairs 0..j-1 with
///    bunches 0..b-1 (all meeting delay) is the Pareto frontier of
///    (repeater area used, repeater count used) — repeater area is budget,
///    repeater count drives via blockage below. No discretization of
///    repeater area is needed: for a given assignment the paper's
///    "incremental insertion until the target is met" fixes the repeater
///    area exactly (delay::WireDelayModel::stages_to_meet).
///
///  * Once the prefix breaks, the rest is delay-free packing, which
///    bottom-up greedy solves optimally (paper Lemma 1; core/free_pack).
///
///  * Break candidates are verified best-first (highest rank first), so
///    the expensive suffix-packing check runs only a handful of times on
///    typical instances.
///
/// The result is the exact optimum at bunch granularity — the paper's own
/// granularity, with rank error bounded by the largest bunch (Section
/// 5.1). The optional boundary refinement extends the prefix into the
/// first failing bunch wire-by-wire when the leftover budget allows.

#pragma once

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Engine knobs.
struct DpOptions {
  bool build_trace = true;       ///< reconstruct per-pair usage
  bool refine_boundary = true;   ///< wire-level extension into failing bunch

  /// Prune unverified heap pushes whose optimistic key cannot beat the
  /// best verified entry already in the heap. Exact: verified entries win
  /// ties, so a pruned entry could never pop before the search terminates.
  /// Off only for the differential property test.
  bool enable_pruning = true;

  /// Witness of a previously solved (nearby) instance. The solver verifies
  /// it against THIS instance first; when feasible, its key becomes a
  /// strict lower bound pruning unverified pushes. The warm candidate is
  /// never itself returnable, and only entries the search would never
  /// examine are pruned, so the result — rank, witness, placements — is
  /// bitwise-identical whether or not the warm start hits (DESIGN.md
  /// Section 10.4).
  const DpWitness* warm_start = nullptr;

  /// Validate the sorted-frontier invariant (r strictly ascending, z
  /// strictly descending) after every bucket the forward sweep line
  /// materializes. Test-only: O(frontier) per bucket.
  bool check_invariants = false;
};

/// Computes r(alpha) for the instance. Never throws on well-formed
/// instances; infeasible assignment (Definition 3) yields rank 0 with
/// all_assigned = false.
[[nodiscard]] RankResult dp_rank(const Instance& inst,
                                 const DpOptions& options = {});

}  // namespace iarank::core
