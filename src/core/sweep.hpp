/// \file sweep.hpp
/// \brief Parameter sweeps reproducing the paper's Table 4, and the
///        K-vs-M equivalence analysis of Section 5.2.

#pragma once

#include <string>
#include <vector>

#include "src/core/engine.hpp"

namespace iarank::core {

/// Which RankOptions field a sweep varies.
enum class SweepParameter {
  kIldPermittivity,   ///< Table 4 column K
  kMillerFactor,      ///< Table 4 column M
  kClockFrequency,    ///< Table 4 column C [Hz]
  kRepeaterFraction,  ///< Table 4 column R
};

[[nodiscard]] std::string to_string(SweepParameter p);

/// One evaluated sweep point.
struct SweepPoint {
  double value = 0.0;  ///< the swept parameter's value
  RankResult result;
};

/// A completed sweep.
struct SweepResult {
  SweepParameter parameter{};
  std::vector<SweepPoint> points;
};

/// Evaluates `values` of `parameter`, all other options at `base`.
/// The WLD is in gate pitches and shared across points. Points are
/// independent; `threads` > 1 evaluates them concurrently (results are
/// identical and ordered regardless of thread count).
[[nodiscard]] SweepResult sweep_parameter(const DesignSpec& design,
                                          const RankOptions& base,
                                          const wld::Wld& wld_in_pitches,
                                          SweepParameter parameter,
                                          const std::vector<double>& values,
                                          unsigned threads = 1);

/// The exact value grids of the paper's Table 4 (130 nm, 1M gates).
[[nodiscard]] std::vector<double> table4_k_values();  ///< 3.9 down to 1.8
[[nodiscard]] std::vector<double> table4_m_values();  ///< 2.00 down to 1.00
[[nodiscard]] std::vector<double> table4_c_values();  ///< 0.5 to 1.7 GHz
[[nodiscard]] std::vector<double> table4_r_values();  ///< 0.1 to 0.5

/// Smallest swept value whose normalized rank reaches `target` (linear
/// interpolation between adjacent points). Used for the paper's headline:
/// the K reduction and the M reduction that buy the same rank. Returns
/// NaN when the target is never reached.
[[nodiscard]] double value_reaching_rank(const SweepResult& sweep,
                                         double target_normalized);

}  // namespace iarank::core
