/// \file sweep.hpp
/// \brief Parameter sweeps reproducing the paper's Table 4, and the
///        K-vs-M equivalence analysis of Section 5.2.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/instance_builder.hpp"
#include "src/util/status.hpp"

namespace iarank::core {

/// Which RankOptions field a sweep varies.
enum class SweepParameter {
  kIldPermittivity,   ///< Table 4 column K
  kMillerFactor,      ///< Table 4 column M
  kClockFrequency,    ///< Table 4 column C [Hz]
  kRepeaterFraction,  ///< Table 4 column R
};

[[nodiscard]] std::string to_string(SweepParameter p);

/// Parses the Table 4 column letter ("K", "M", "C", "R") used by the CLI
/// and the rank-server protocol. Throws util::Error(kBadInput) on any
/// other token.
[[nodiscard]] SweepParameter sweep_parameter_from_string(
    std::string_view token);

/// One evaluated sweep point. A point whose evaluation threw carries the
/// failure in `status` (result is value-initialized); the rest of the
/// grid still completes — per-point isolation is the sweep engine's
/// failure model.
struct SweepPoint {
  double value = 0.0;  ///< the swept parameter's value
  RankResult result;
  util::Status status;  ///< kOk, or why this point has no result
};

/// Observability of one sweep run: the builder's per-stage cache profile
/// plus the DP effort summed over all points. The count fields are
/// deterministic (identical across thread counts and hosts); the seconds
/// fields are wall-clock and vary run to run.
struct SweepProfile {
  BuildProfile build;                ///< staged instance construction
  double dp_seconds = 0.0;           ///< total wall time inside dp_rank
  std::int64_t dp_arena_nodes = 0;   ///< DP state elements, all points
  std::int64_t dp_max_frontier = 0;  ///< largest frontier seen at any point
  std::int64_t dp_heap_pops = 0;     ///< best-first candidates examined
  std::int64_t dp_verify_calls = 0;  ///< free-pack verifications run
  /// Heap pushes skipped by incumbent/warm-start bounds, all points.
  /// Results never depend on pruning, but this total does depend on which
  /// warm witness each point received, so — unlike the counts above — it
  /// is NOT comparable across thread counts.
  std::int64_t dp_pruned_entries = 0;
  /// Points whose warm-start witness verified on their instance (equals
  /// points - 1 for a single-threaded warm sweep of a smooth grid).
  /// Scheduling-dependent, like dp_pruned_entries.
  std::int64_t dp_warm_start_hits = 0;
  double total_seconds = 0.0;        ///< wall time of the whole sweep
  unsigned threads = 1;              ///< parallelism requested
  std::int64_t failed_points = 0;    ///< points with a non-ok status
  std::int64_t resumed_points = 0;   ///< points recovered from a checkpoint
  double checkpoint_seconds = 0.0;   ///< wall time in the journal (open+appends)
  double failed_point_seconds = 0.0;  ///< wall time spent on failed points
};

/// A completed sweep.
struct SweepResult {
  SweepParameter parameter{};
  std::vector<SweepPoint> points;
  SweepProfile profile;
};

/// Execution knobs of one sweep run.
struct SweepRunOptions {
  unsigned threads = 1;  ///< points evaluated concurrently (>= 1)

  /// Journaled checkpoint/resume: when non-empty, every completed point
  /// is appended to this CRC-guarded journal (util::CheckpointJournal),
  /// keyed by a digest of (design, WLD, options, parameter, grid). A rerun
  /// after a crash — SIGKILL included — salvages all completed points and
  /// evaluates only the missing ones; resumed results are bitwise
  /// identical to an uninterrupted run. A key mismatch (the file belongs
  /// to different work) restarts the journal from scratch.
  std::string checkpoint_path;

  /// fsync the journal after every point (durable through power loss).
  /// Off still flushes per point, bounding loss to what the kernel had
  /// not written back at the crash.
  bool fsync_checkpoint = true;

  /// Feed each point the witness of the most recent completed lower-index
  /// point as a DP warm start. Neighbouring sweep points have similar
  /// optima, so the verified witness prunes most of the next solve's heap
  /// traffic. Strictly prune-only: results are bitwise-identical with the
  /// flag on or off, at any thread count (DESIGN.md Section 10.4) — only
  /// the wall time and the scheduling-dependent pruned/warm counters move.
  bool warm_start = true;
};

/// Evaluates `values` of `parameter`, all other options at `base`.
/// The WLD is in gate pitches and shared across points. Points are
/// independent; `threads` > 1 evaluates them concurrently on the shared
/// util::ThreadPool (results are identical and ordered regardless of
/// thread count). A point whose evaluation throws is recorded in its
/// SweepPoint::status and the rest of the grid completes; only journal IO
/// errors (and pool misuse) propagate out of the sweep itself.
[[nodiscard]] SweepResult sweep_parameter(const DesignSpec& design,
                                          const RankOptions& base,
                                          const wld::Wld& wld_in_pitches,
                                          SweepParameter parameter,
                                          const std::vector<double>& values,
                                          unsigned threads = 1);

/// Same, against a caller-owned builder, so the stage caches persist
/// across sweeps (a K sweep after a C sweep reuses the coarsening and die
/// stages; repeating a sweep costs only cache hits plus the DP). Cached
/// evaluations are bitwise-identical to cold ones.
[[nodiscard]] SweepResult sweep_parameter(InstanceBuilder& builder,
                                          const RankOptions& base,
                                          SweepParameter parameter,
                                          const std::vector<double>& values,
                                          unsigned threads = 1);

/// Full-control variants (checkpointing lives here).
[[nodiscard]] SweepResult sweep_parameter(const DesignSpec& design,
                                          const RankOptions& base,
                                          const wld::Wld& wld_in_pitches,
                                          SweepParameter parameter,
                                          const std::vector<double>& values,
                                          const SweepRunOptions& run);

[[nodiscard]] SweepResult sweep_parameter(InstanceBuilder& builder,
                                          const RankOptions& base,
                                          SweepParameter parameter,
                                          const std::vector<double>& values,
                                          const SweepRunOptions& run);

/// The exact value grids of the paper's Table 4 (130 nm, 1M gates).
/// Generated by index (value = formula(i)), not by repeated addition, so
/// the grids have the documented sizes (22, 21, 13, 5) on every platform
/// and each entry is the double nearest the printed decimal.
[[nodiscard]] std::vector<double> table4_k_values();  ///< 3.9 down to 1.8
[[nodiscard]] std::vector<double> table4_m_values();  ///< 2.00 down to 1.00
[[nodiscard]] std::vector<double> table4_c_values();  ///< 0.5 to 1.7 GHz
[[nodiscard]] std::vector<double> table4_r_values();  ///< 0.1 to 0.5

/// The swept value at which normalized rank crosses `target` (linear
/// interpolation between the adjacent points). Handles both sweep shapes:
/// when rank increases along the sweep (K, M, R — the met region is a
/// suffix) it returns the first crossing; when rank decreases along the
/// sweep (C — the met region is a prefix) it returns the crossing out of
/// the met prefix, i.e. the largest clock still reaching `target`. Used
/// for the paper's headline: the K reduction and the M reduction that buy
/// the same rank. Returns NaN when the target is never reached.
[[nodiscard]] double value_reaching_rank(const SweepResult& sweep,
                                         double target_normalized);

}  // namespace iarank::core
