/// \file sensitivity.hpp
/// \brief Rank elasticities: how strongly each knob moves the metric.
///
/// The paper's conclusion — "it is not possible to enable future MPU-class
/// designs by material improvements alone; ... co-optimize across several
/// material, process, and design characteristics" — is a statement about
/// relative sensitivities. This module quantifies it: for each parameter,
/// the elasticity (relative rank change per relative parameter change)
/// around a baseline, using central differences over the exact DP.

#pragma once

#include <vector>

#include "src/core/engine.hpp"
#include "src/core/sweep.hpp"

namespace iarank::core {

/// Elasticity of one parameter at the baseline.
struct Sensitivity {
  SweepParameter parameter{};
  double base_value = 0.0;
  double low_value = 0.0;         ///< base * (1 - rel_step)
  double high_value = 0.0;        ///< base * (1 + rel_step)
  double base_normalized = 0.0;
  double low_normalized = 0.0;
  double high_normalized = 0.0;
  /// d(ln rank)/d(ln parameter), central difference. Negative for
  /// parameters whose increase hurts (K, M, C); positive for R.
  double elasticity = 0.0;

  /// kOk, or why this parameter's elasticity is NaN: when a perturbed
  /// endpoint throws, the failure lands here and the other parameters
  /// still report — per-point isolation, same as the sweep engine.
  util::Status status;
};

/// Evaluates all four Table 4 parameters at +-rel_step around the given
/// baseline. All nine evaluations share one staged InstanceBuilder, so
/// common stages are computed once; `threads` > 1 evaluates each
/// parameter's two perturbed points concurrently (results are identical
/// for any value). Throws util::Error when the baseline rank is zero (no
/// meaningful elasticity). rel_step must be in (0, 0.5].
[[nodiscard]] std::vector<Sensitivity> rank_sensitivities(
    const DesignSpec& design, const RankOptions& baseline,
    const wld::Wld& wld_in_pitches, double rel_step = 0.05,
    unsigned threads = 1);

}  // namespace iarank::core
