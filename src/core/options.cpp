#include "src/core/options.hpp"

#include "src/util/error.hpp"

namespace iarank::core {

void DesignSpec::validate() const {
  node.validate();
  arch.validate();
  iarank::util::require(gate_count > 0, "DesignSpec: gate_count must be > 0");
}

void RankOptions::validate() const {
  iarank::util::require(ild_permittivity >= 1.0,
                        "RankOptions: ild_permittivity must be >= 1");
  iarank::util::require(miller_factor >= 0.0,
                        "RankOptions: miller_factor must be >= 0");
  iarank::util::require(clock_frequency > 0.0,
                        "RankOptions: clock_frequency must be > 0");
  iarank::util::require(repeater_fraction >= 0.0 && repeater_fraction < 1.0,
                        "RankOptions: repeater_fraction must be in [0, 1)");
  switching.validate();
  vias.validate();
  if (max_stages) {
    iarank::util::require(*max_stages >= 1,
                          "RankOptions: max_stages must be >= 1");
  }
  iarank::util::require(max_noise_ratio >= 0.0 && max_noise_ratio <= 1.0,
                        "RankOptions: max_noise_ratio must be in [0, 1]");
  iarank::util::require(min_repeater_spacing >= 0.0,
                        "RankOptions: min_repeater_spacing must be >= 0");
  iarank::util::require(pair_capacity_factor > 0.0,
                        "RankOptions: pair_capacity_factor must be > 0");
  iarank::util::require(bunch_size >= 1, "RankOptions: bunch_size must be >= 1");
  iarank::util::require(bin_window >= 0.0,
                        "RankOptions: bin_window must be >= 0");
}

}  // namespace iarank::core
