#include "src/core/sensitivity.hpp"

#include <cmath>
#include <limits>

#include "src/util/error.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

double parameter_value(const RankOptions& options, SweepParameter p) {
  switch (p) {
    case SweepParameter::kIldPermittivity:
      return options.ild_permittivity;
    case SweepParameter::kMillerFactor:
      return options.miller_factor;
    case SweepParameter::kClockFrequency:
      return options.clock_frequency;
    case SweepParameter::kRepeaterFraction:
      return options.repeater_fraction;
  }
  throw iarank::util::Error("rank_sensitivities: unknown parameter");
}

}  // namespace

std::vector<Sensitivity> rank_sensitivities(const DesignSpec& design,
                                            const RankOptions& baseline,
                                            const wld::Wld& wld_in_pitches,
                                            double rel_step,
                                            unsigned threads) {
  TRACE_SPAN("rank_sensitivities");
  iarank::util::require(rel_step > 0.0 && rel_step <= 0.5,
                        "rank_sensitivities: rel_step must be in (0, 0.5]");
  iarank::util::require(threads >= 1,
                        "rank_sensitivities: threads must be >= 1");

  // One builder for all nine evaluations: the baseline plus each
  // parameter's +-step pair leave three of the four stages untouched.
  InstanceBuilder builder(design, wld_in_pitches);
  const RankResult base = [&] {
    const Instance inst = builder.build(baseline);
    DpOptions dp;
    dp.refine_boundary = baseline.refine_boundary;
    return dp_rank(inst, dp);
  }();
  iarank::util::require(base.rank > 0,
                        "rank_sensitivities: baseline rank is zero");

  std::vector<Sensitivity> out;
  for (const SweepParameter p :
       {SweepParameter::kIldPermittivity, SweepParameter::kMillerFactor,
        SweepParameter::kClockFrequency, SweepParameter::kRepeaterFraction}) {
    Sensitivity s;
    s.parameter = p;
    s.base_value = parameter_value(baseline, p);
    s.base_normalized = base.normalized;
    s.low_value = s.base_value * (1.0 - rel_step);
    s.high_value = s.base_value * (1.0 + rel_step);

    const auto sweep = sweep_parameter(builder, baseline, p,
                                       {s.low_value, s.high_value}, threads);
    const util::Status& low_status = sweep.points[0].status;
    const util::Status& high_status = sweep.points[1].status;
    if (!low_status.ok() || !high_status.ok()) {
      // A failed endpoint makes this parameter's elasticity undefined;
      // carry the reason and keep evaluating the other parameters.
      s.status = low_status.ok() ? high_status : low_status;
      s.low_normalized = std::numeric_limits<double>::quiet_NaN();
      s.high_normalized = std::numeric_limits<double>::quiet_NaN();
      s.elasticity = std::numeric_limits<double>::quiet_NaN();
      out.push_back(s);
      continue;
    }
    s.low_normalized = sweep.points[0].result.normalized;
    s.high_normalized = sweep.points[1].result.normalized;

    if (s.low_normalized > 0.0 && s.high_normalized > 0.0) {
      s.elasticity = std::log(s.high_normalized / s.low_normalized) /
                     std::log(s.high_value / s.low_value);
    } else {
      // One side collapsed to rank 0: report a one-sided slope.
      s.elasticity = (s.high_normalized - s.low_normalized) /
                     (2.0 * rel_step * s.base_normalized);
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace iarank::core
