#include "src/core/explore.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include "src/core/checkpoint.hpp"
#include "src/core/instance_builder.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/digest.hpp"
#include "src/util/error.hpp"
#include "src/util/event_log.hpp"
#include "src/util/journal.hpp"
#include "src/util/json.hpp"
#include "src/util/lease_queue.hpp"
#include "src/util/metrics.hpp"
#include "src/util/numeric.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/subprocess.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"

namespace iarank::core {

namespace {

// Per-process point accounting: each worker exports its own registry
// snapshot into <dir>/metrics/, so these read as per-worker totals there
// and as coordinator totals in coordinator.prom.
util::Counter& kPointsOk = util::MetricsRegistry::counter(
    "iarank_explore_points_ok_total", "exploration points evaluated ok");
util::Counter& kPointsFailed = util::MetricsRegistry::counter(
    "iarank_explore_points_failed_total",
    "exploration points whose evaluation threw");
util::Counter& kPointsQuarantined = util::MetricsRegistry::counter(
    "iarank_explore_points_quarantined_total",
    "poisoned points that crashed their salvage child too");
util::Counter& kMergeDuplicates = util::MetricsRegistry::counter(
    "iarank_explore_merge_duplicates_total",
    "duplicate journal records collapsed at merge (bitwise-audited)");
util::Counter& kMergeTornTails = util::MetricsRegistry::counter(
    "iarank_explore_merge_torn_tails_total",
    "journals whose torn tail was dropped at merge");
util::Counter& kWorkersRespawned = util::MetricsRegistry::counter(
    "iarank_explore_workers_respawned_total",
    "worker processes respawned after an exit mid-run");

/// Journal payload of "this worker is about to evaluate the index". A
/// completion record for the same index overwrites it in the entries map;
/// a trailing intent with no completion is the fingerprint of the point a
/// killed worker was inside (the poison-detection signal).
constexpr std::string_view kIntentMarker = "!";

void make_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    throw util::Error("explore: cannot create '" + path +
                          "': " + std::strerror(errno),
                      util::ErrorCategory::kIo);
  }
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split_list(const std::string& text,
                                    const std::string& key) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string token = trim(std::string_view(text).substr(start, end - start));
    util::require(!token.empty(), "explore: empty entry in '" + key + "'");
    out.push_back(token);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  util::require(!out.empty(), "explore: '" + key + "' has no entries");
  return out;
}

/// Parses one dimension value list: comma-separated doubles, where a
/// `lo:hi:n` token expands to an n-point linspace.
std::vector<double> parse_value_list(const util::Config& config,
                                     const std::string& key, double fallback) {
  if (!config.has(key)) return {fallback};
  std::vector<double> out;
  for (const std::string& token : split_list(config.get(key), key)) {
    const std::size_t first = token.find(':');
    if (first == std::string::npos) {
      out.push_back(util::parse_double(token));
      continue;
    }
    const std::size_t second = token.find(':', first + 1);
    util::require(second != std::string::npos &&
                      token.find(':', second + 1) == std::string::npos,
                  "explore: '" + key + "' range token '" + token +
                      "' is not lo:hi:n");
    const double lo = util::parse_double(token.substr(0, first));
    const double hi = util::parse_double(token.substr(first + 1, second - first - 1));
    const long long n = util::parse_int(token.substr(second + 1));
    util::require(n >= 1, "explore: '" + key + "' range count must be >= 1");
    for (const double v : util::linspace(lo, hi, static_cast<std::size_t>(n))) {
      out.push_back(v);
    }
  }
  return out;
}

delay::TargetModel target_model_from_name(const std::string& name) {
  if (name == "linear") return delay::TargetModel::kLinear;
  if (name == "sqrt") return delay::TargetModel::kSqrt;
  if (name == "quadratic") return delay::TargetModel::kQuadratic;
  if (name == "uniform") return delay::TargetModel::kUniform;
  throw util::Error("explore: unknown target_model '" + name + "'");
}

// ---------------------------------------------------------------------------
// Poison bookkeeping: "<index> <crash count>" lines, atomically rewritten by
// the coordinator, re-read by workers at each chunk claim.

std::map<std::int64_t, int> load_poison(const std::string& path) {
  std::map<std::int64_t, int> out;
  std::ifstream in(path);
  std::int64_t index = 0;
  long long count = 0;
  while (in >> index >> count) out[index] = static_cast<int>(count);
  return out;
}

void save_poison(const std::string& path,
                 const std::map<std::int64_t, int>& poison) {
  std::ostringstream os;
  for (const auto& [index, count] : poison) {
    os << index << " " << count << "\n";
  }
  util::atomic_write_file(path, os.str());
}

// ---------------------------------------------------------------------------
// Chaos-test hook: IARANK_EXPLORE_CRASH="<index>:<times>:<statefile>" makes
// the evaluating process SIGKILL itself the first <times> times <index> is
// attempted (crash count persisted in <statefile>, one line per crash).
// This is how the tests manufacture a deterministically poisoned point;
// after <times> crashes the point evaluates normally, which is exactly the
// shape the salvage path must recover. Test-only: unset in production.

void maybe_crash_for_test(std::int64_t index) {
  struct Hook {
    std::int64_t index = -1;
    long long times = 0;
    std::string state;
  };
  // Parsed per call: an evaluation costs a DP solve, so a getenv is free,
  // and tests may set the hook after this process already evaluated points.
  const Hook hook = [] {
    Hook h;
    const char* env = std::getenv("IARANK_EXPLORE_CRASH");
    if (env == nullptr) return h;
    const std::string text(env);
    const std::size_t a = text.find(':');
    const std::size_t b = text.find(':', a + 1);
    if (a == std::string::npos || b == std::string::npos) return h;
    try {
      h.index = util::parse_int(text.substr(0, a));
      h.times = util::parse_int(text.substr(a + 1, b - a - 1));
    } catch (const std::exception&) {
      return Hook{};
    }
    h.state = text.substr(b + 1);
    return h;
  }();
  if (hook.index != index || hook.state.empty()) return;
  long long prior = 0;
  {
    std::ifstream in(hook.state);
    std::string line;
    while (std::getline(in, line)) ++prior;
  }
  if (prior >= hook.times) return;
  const int fd = ::open(hook.state.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd >= 0) {
    (void)!::write(fd, "x\n", 2);
    ::close(fd);
  }
  (void)::raise(SIGKILL);
}

// ---------------------------------------------------------------------------
// Point evaluation, shared by workers, the salvage children and the
// coordinator's in-process path. One lazily-built InstanceBuilder per
// (node, rent) group so stage caches are reused across the grid, plus a
// per-group warm-start slot (prune-only: results are bitwise-identical
// with any witness, see DpOptions::warm_start).

class PointEvaluator {
 public:
  explicit PointEvaluator(const ExploreSpec& spec)
      : spec_(spec),
        groups_(spec.nodes().size() * spec.rent_ps().size()) {}

  [[nodiscard]] SweepPoint evaluate(std::int64_t index) {
    TRACE_SPAN("explore.point");
    const ExploreSpec::Scenario s = spec_.scenario(index);
    Group& group = groups_[s.node * spec_.rent_ps().size() + s.rent];
    {
      const std::scoped_lock lock(group.mutex);
      if (group.builder == nullptr) {
        group.builder = std::make_unique<InstanceBuilder>(
            spec_.design(s.node), spec_.wld(s.node, s.rent));
      }
    }
    maybe_crash_for_test(index);
    SweepPoint point;
    point.value = static_cast<double>(index);
    try {
      const RankOptions opt = spec_.options_at(s);
      // Reused per worker thread (the builder varies by scenario group,
      // but shapes repeat, so warm rebuilds stay allocation-free).
      thread_local Instance inst;
      group.builder->build_into(opt, inst);
      DpOptions dp;
      dp.build_trace = false;  // journal carries headline fields only
      dp.refine_boundary = opt.refine_boundary;
      DpWitness warm_witness;
      {
        const std::scoped_lock lock(group.mutex);
        if (group.warm_index >= 0 && group.warm.valid()) {
          warm_witness = group.warm;
          dp.warm_start = &warm_witness;
        }
      }
      dp_rank_into(inst, dp, point.result);
      point.status = util::Status::make_ok();
      if (point.result.all_assigned && point.result.witness.valid()) {
        const std::scoped_lock lock(group.mutex);
        if (index > group.warm_index) {
          group.warm_index = index;
          group.warm = point.result.witness;
        }
      }
    } catch (const std::exception& e) {
      point.result = RankResult{};
      point.status = util::Status::from_exception(e);
    }
    // The journal payload must be a pure function of the grid index: zero
    // the wall-clock / warm-start-dependent stats (they are in the codec)
    // and the witness so a chaos run's records are bitwise-identical to a
    // clean run's.
    point.result.dp = RankResult::DpStats{};
    point.result.witness = DpWitness{};
    if (point.status.ok()) {
      kPointsOk.inc();
    } else {
      kPointsFailed.inc();
    }
    return point;
  }

 private:
  struct Group {
    std::mutex mutex;
    std::unique_ptr<InstanceBuilder> builder;
    std::int64_t warm_index = -1;
    DpWitness warm;
  };

  const ExploreSpec& spec_;
  std::vector<Group> groups_;  ///< sized at construction, never resized
};

std::string journals_dir(const ExploreOptions& options) {
  return options.dir + "/journals";
}

std::string events_dir(const ExploreOptions& options) {
  return options.dir + "/events";
}

/// Same clock as the lease heartbeats (CLOCK_MONOTONIC, system-wide on
/// Linux), so heartbeat ages in status.json are meaningful.
std::int64_t monotonic_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000000;
}

// ---------------------------------------------------------------------------
// Live status surface: <dir>/status.json, atomically rewritten by the
// coordinator — while workers run, a snapshot of the queue (per-worker
// progress, ETA); after the merge, the final reconciled counts. Readers
// (humans, the chaos smoke) always see a complete JSON document.

void write_running_status(const std::string& path, std::int64_t total,
                          util::LeaseQueue& queue, double elapsed_seconds,
                          std::size_t live_workers,
                          std::size_t poisoned_points) {
  const util::LeaseQueue::Snapshot snap = queue.snapshot();
  std::int64_t todo_points = 0;
  for (const util::LeaseChunk& chunk : snap.todos) {
    todo_points += chunk.hi - chunk.lo;
  }
  const std::int64_t now = monotonic_ms();
  std::int64_t leased_points = 0;
  util::Json workers(util::Json::Array{});
  for (const util::LeaseQueue::LeaseView& lease : snap.leases) {
    leased_points += lease.chunk.hi - lease.progress;
    util::Json w;
    w["worker"] = lease.worker;  // "" for a torn claim awaiting reclaim
    w["lo"] = lease.chunk.lo;
    w["hi"] = lease.chunk.hi;
    w["progress"] = lease.progress;
    w["attempts"] = static_cast<std::int64_t>(lease.chunk.attempts);
    w["heartbeat_age_ms"] =
        std::max<std::int64_t>(0, now - lease.heartbeat_ms);
    workers.push_back(std::move(w));
  }
  const std::int64_t remaining = todo_points + leased_points;
  const std::int64_t done = std::max<std::int64_t>(0, total - remaining);

  util::Json out;
  out["state"] = "running";
  out["total_points"] = total;
  out["done_points"] = done;
  out["todo_points"] = todo_points;
  out["leased_points"] = leased_points;
  out["live_workers"] = static_cast<std::int64_t>(live_workers);
  out["poisoned_points"] = static_cast<std::int64_t>(poisoned_points);
  out["elapsed_seconds"] = elapsed_seconds;
  if (done > 0 && elapsed_seconds > 0.0) {
    out["eta_seconds"] = elapsed_seconds * static_cast<double>(remaining) /
                         static_cast<double>(done);
  }
  out["workers"] = std::move(workers);
  util::atomic_write_file(path, out.dump() + "\n");
}

void write_final_status(const std::string& path, std::int64_t total,
                        const ExploreResult& result, double elapsed_seconds) {
  util::Json out;
  out["state"] = "done";
  out["total_points"] = total;
  out["ok"] = result.ok;
  out["failed"] = result.failed;
  out["quarantined"] = result.quarantined;
  out["resumed"] = result.resumed;
  out["duplicates"] = result.duplicates;
  out["torn_tails"] = result.torn_tails;
  out["pareto_points"] = static_cast<std::int64_t>(result.pareto.size());
  out["elapsed_seconds"] = elapsed_seconds;
  util::atomic_write_file(path, out.dump() + "\n");
}

/// Concatenates every per-worker event log into <dir>/events.jsonl. Each
/// worker file is complete, line-oriented JSONL, so plain concatenation
/// (in sorted name order, for reproducible diagnostics) is a valid merge.
void merge_event_logs(const ExploreOptions& options) {
  std::vector<std::string> names;
  if (DIR* d = ::opendir(events_dir(options).c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string_view name(entry->d_name);
      if (name.size() > 6 &&
          name.substr(name.size() - 6) == std::string_view(".jsonl")) {
        names.emplace_back(name);
      }
    }
    ::closedir(d);
  }
  if (names.empty()) return;
  std::sort(names.begin(), names.end());
  std::string merged;
  for (const std::string& name : names) {
    std::ifstream in(events_dir(options) + "/" + name, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    merged += buf.str();
    if (!merged.empty() && merged.back() != '\n') merged += '\n';
  }
  util::atomic_write_file(options.dir + "/events.jsonl", merged);
}

/// Every journal file of the run, sorted by name for a deterministic merge
/// order (first-complete-wins only ever keeps bitwise-equal copies, but a
/// stable order keeps diagnostics reproducible).
std::vector<std::string> list_journal_files(const std::string& dir) {
  std::vector<std::string> names;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string_view name(entry->d_name);
      if (name.size() > 8 &&
          name.substr(name.size() - 8) == std::string_view(".journal")) {
        names.emplace_back(name);
      }
    }
    ::closedir(d);
  }
  std::sort(names.begin(), names.end());
  for (std::string& n : names) n = dir + "/" + n;
  return names;
}

void validate_options(const ExploreOptions& options) {
  util::require(options.workers >= 0, "explore: workers must be >= 0");
  util::require(options.jobs >= 1, "explore: jobs must be >= 1");
  util::require(options.chunk_points >= 1, "explore: chunk_points must be >= 1");
  util::require(options.lease_ttl_seconds > 0.0,
                "explore: lease_ttl_seconds must be > 0");
  util::require(options.poison_threshold >= 1,
                "explore: poison_threshold must be >= 1");
}

}  // namespace

// ---------------------------------------------------------------------------
// ExploreSpec

ExploreSpec ExploreSpec::parse(const util::Config& config) {
  ExploreSpec spec;

  // Node dimension first: every other dimension's fallback comes from the
  // per-node resolved base spec.
  if (config.has("explore.node")) {
    spec.node_names_ = split_list(config.get("explore.node"), "explore.node");
  } else {
    spec.node_names_ = {config.has("node") ? config.get("node")
                                           : std::string("130nm")};
  }

  util::require(!(config.has("explore.rent_p") && config.has("wld.file")),
                "explore: explore.rent_p cannot be combined with wld.file "
                "(a file pins the distribution, so a Rent sweep would be a "
                "lie)");

  std::vector<RunSpec> run_specs;
  run_specs.reserve(spec.node_names_.size());
  for (const std::string& node : spec.node_names_) {
    util::Config node_config = config;
    node_config.set("node", node);
    RunSpec rs = run_spec_from_config(node_config);
    spec.designs_.push_back(rs.design);
    spec.base_options_.push_back(rs.options);
    run_specs.push_back(std::move(rs));
  }
  const RunSpec& base = run_specs.front();

  spec.rent_ps_ =
      parse_value_list(config, "explore.rent_p", base.wld.rent_p);
  if (config.has("explore.target_model")) {
    for (const std::string& name :
         split_list(config.get("explore.target_model"),
                    "explore.target_model")) {
      spec.target_models_.push_back(target_model_from_name(name));
    }
  } else {
    // run_spec_from_config applies the same config overlay to every node,
    // so the base target model (like the base K/M/C/R below) is
    // node-independent.
    spec.target_models_ = {base.options.target_model};
  }
  spec.k_ = parse_value_list(config, "explore.K", base.options.ild_permittivity);
  spec.m_ = parse_value_list(config, "explore.M", base.options.miller_factor);
  spec.c_ = parse_value_list(config, "explore.C", base.options.clock_frequency);
  spec.r_ =
      parse_value_list(config, "explore.R", base.options.repeater_fraction);

  constexpr std::int64_t kMaxPoints = 1'000'000'000;
  std::int64_t total = 1;
  for (const std::size_t dim :
       {spec.node_names_.size(), spec.rent_ps_.size(),
        spec.target_models_.size(), spec.k_.size(), spec.m_.size(),
        spec.c_.size(), spec.r_.size()}) {
    util::require(total <= kMaxPoints / static_cast<std::int64_t>(dim),
                  "explore: grid exceeds 1e9 points");
    total *= static_cast<std::int64_t>(dim);
  }

  // Generate (or load) every WLD eagerly: a worker must never discover a
  // bad spec mid-run, and the digest key needs the resolved distributions.
  spec.wlds_.reserve(spec.node_names_.size() * spec.rent_ps_.size());
  for (std::size_t n = 0; n < spec.node_names_.size(); ++n) {
    for (const double rent : spec.rent_ps_) {
      if (!run_specs[n].wld_file.empty()) {
        spec.wlds_.push_back(resolve_wld(run_specs[n]));
        continue;
      }
      WldParams params = run_specs[n].wld;
      params.rent_p = rent;
      spec.wlds_.push_back(default_wld(spec.designs_[n], params));
    }
  }
  return spec;
}

ExploreSpec ExploreSpec::load(const std::string& path) {
  return parse(util::Config::load(path));
}

std::int64_t ExploreSpec::total_points() const {
  return static_cast<std::int64_t>(node_names_.size() * rent_ps_.size() *
                                   target_models_.size() * k_.size() *
                                   m_.size() * c_.size() * r_.size());
}

std::uint64_t ExploreSpec::key() const {
  util::Digest d;
  d.str("iarank-explore-v1");
  d.u64(node_names_.size());
  for (std::size_t n = 0; n < node_names_.size(); ++n) {
    d.str(node_names_[n]);
    digest_design(d, designs_[n]);
    digest_rank_options(d, base_options_[n]);
  }
  d.u64(rent_ps_.size());
  for (const double v : rent_ps_) d.f64(v);
  d.u64(target_models_.size());
  for (const delay::TargetModel m : target_models_) {
    d.i64(static_cast<std::int64_t>(m));
  }
  for (const std::vector<double>* dim : {&k_, &m_, &c_, &r_}) {
    d.u64(dim->size());
    for (const double v : *dim) d.f64(v);
  }
  for (const wld::Wld& w : wlds_) digest_wld(d, w);
  return d.value();
}

ExploreSpec::Scenario ExploreSpec::scenario(std::int64_t index) const {
  util::require(index >= 0 && index < total_points(),
                "explore: grid index out of range");
  auto idx = static_cast<std::size_t>(index);
  Scenario s;
  s.r = idx % r_.size();
  idx /= r_.size();
  s.c = idx % c_.size();
  idx /= c_.size();
  s.m = idx % m_.size();
  idx /= m_.size();
  s.k = idx % k_.size();
  idx /= k_.size();
  s.target = idx % target_models_.size();
  idx /= target_models_.size();
  s.rent = idx % rent_ps_.size();
  idx /= rent_ps_.size();
  s.node = idx;
  return s;
}

RankOptions ExploreSpec::options_at(const Scenario& s) const {
  RankOptions opt = base_options_[s.node];
  opt.target_model = target_models_[s.target];
  opt.ild_permittivity = k_[s.k];
  opt.miller_factor = m_[s.m];
  opt.clock_frequency = c_[s.c];
  opt.repeater_fraction = r_[s.r];
  return opt;
}

// ---------------------------------------------------------------------------
// Worker

int run_explore_worker(const ExploreSpec& spec, const ExploreOptions& options) {
  validate_options(options);
  std::string name = "w";
  name += std::to_string(::getpid());
  util::LeaseQueue::Options queue_options;
  queue_options.lease_ttl_seconds = options.lease_ttl_seconds;
  util::LeaseQueue queue(options.dir + "/queue", queue_options);
  util::CheckpointJournal journal(
      journals_dir(options) + "/" + name + ".journal", spec.key(),
      {options.fsync_journal});
  // Per-worker event log (merged into <dir>/events.jsonl by the
  // coordinator). Best-effort: a worker that cannot log still evaluates.
  // close() first drops any sink fd inherited across fork.
  util::EventLog& events = util::EventLog::instance();
  try {
    events.close();
    make_dir(events_dir(options));
    events.open(events_dir(options) + "/" + name + ".jsonl");
    util::Json fields;
    fields["worker"] = name;
    events.emit(util::Severity::kInfo, "worker.start", std::move(fields));
  } catch (const std::exception&) {
  }
  PointEvaluator evaluator(spec);
  const std::string poison_path = options.dir + "/poison.txt";
  // Renew well inside the TTL so one slow point (or a scheduling hiccup)
  // does not read as a death.
  const double heartbeat_seconds =
      std::clamp(options.lease_ttl_seconds / 4.0, 0.05, 1.0);

  for (;;) {
    std::optional<util::LeaseChunk> chunk = queue.claim(name);
    if (!chunk.has_value()) {
      if (queue.steal(name)) continue;  // a chunk appeared: claim it
      if (queue.idle()) break;          // every index is completed
      ::usleep(20 * 1000);              // all work leased; wait to steal
      continue;
    }
    if (events.enabled()) {
      util::Json fields;
      fields["worker"] = name;
      fields["lo"] = chunk->lo;
      fields["hi"] = chunk->hi;
      fields["attempts"] = static_cast<std::int64_t>(chunk->attempts);
      events.emit(util::Severity::kDebug, "chunk.claim", std::move(fields));
    }
    const std::map<std::int64_t, int> poison = load_poison(poison_path);
    std::int64_t hi = chunk->hi;
    util::Stopwatch since_renew;
    bool abandoned = false;
    for (std::int64_t index = chunk->lo; index < hi; ++index) {
      const auto it = poison.find(index);
      if (it != poison.end() && it->second >= options.poison_threshold) {
        continue;  // quarantined: the coordinator salvages it at merge
      }
      journal.append(index, kIntentMarker);
      const SweepPoint point = evaluator.evaluate(index);
      journal.append(index, encode_sweep_point(point));
      if (since_renew.seconds() >= heartbeat_seconds) {
        const std::optional<std::int64_t> current =
            queue.renew(*chunk, name, index + 1);
        if (!current.has_value()) {
          // Reclaimed from under us (we stalled past the TTL). The new
          // owner re-evaluates the remainder; our journal still counts.
          abandoned = true;
          break;
        }
        hi = std::min(hi, *current);  // a thief may have split our range
        since_renew.restart();
      }
    }
    if (!abandoned) queue.complete(*chunk, name);
    if (events.enabled()) {
      util::Json fields;
      fields["worker"] = name;
      fields["lo"] = chunk->lo;
      fields["hi"] = hi;
      events.emit(abandoned ? util::Severity::kWarn : util::Severity::kDebug,
                  abandoned ? "chunk.abandoned" : "chunk.complete",
                  std::move(fields));
    }
  }
  if (events.enabled()) {
    util::Json fields;
    fields["worker"] = name;
    events.emit(util::Severity::kInfo, "worker.exit", std::move(fields));
    try {
      events.close();
    } catch (const std::exception&) {
    }
  }
  util::MetricsRegistry::instance().save(options.dir + "/metrics/" + name +
                                         ".prom");
  return 0;
}

// ---------------------------------------------------------------------------
// Coordinator

ExploreResult run_explore(const ExploreSpec& spec,
                          const ExploreOptions& options) {
  validate_options(options);
  make_dir(options.dir);
  make_dir(journals_dir(options));
  make_dir(options.dir + "/metrics");
  make_dir(events_dir(options));
  const std::uint64_t key = spec.key();
  const std::int64_t total = spec.total_points();
  const std::string poison_path = options.dir + "/poison.txt";
  const std::string status_path = options.dir + "/status.json";
  std::map<std::int64_t, int> poison = load_poison(poison_path);
  util::Stopwatch run_timer;

  util::EventLog& events = util::EventLog::instance();
  if (events.enabled()) {
    util::Json fields;
    fields["total_points"] = total;
    fields["workers"] = static_cast<std::int64_t>(options.workers);
    events.emit(util::Severity::kInfo, "explore.start", std::move(fields));
    // Flush before forking: a worker child inherits this process's
    // buffered lines and would duplicate them into its own close().
    events.flush();
  }

  // Fork-ordering discipline (subprocess.hpp): materialize the shared pool
  // now, while no pool thread can hold a lock, so every child forked below
  // inherits a pool it will bypass (parallel_for runs inline in children).
  util::ThreadPool::shared();

  if (options.workers > 0 && total > 0) {
    // Resume: everything already journaled (by any previous run of this
    // spec) is not re-enqueued.
    std::vector<char> done(static_cast<std::size_t>(total), 0);
    for (const std::string& path : list_journal_files(journals_dir(options))) {
      const util::CheckpointJournal::Scan scan =
          util::CheckpointJournal::scan(path, key);
      for (const auto& [index, payload] : scan.entries) {
        if (index < 0 || index >= total) continue;
        if (payload == kIntentMarker) continue;
        done[static_cast<std::size_t>(index)] = 1;
      }
    }

    util::LeaseQueue::Options queue_options;
    queue_options.lease_ttl_seconds = options.lease_ttl_seconds;
    util::LeaseQueue queue(options.dir + "/queue", queue_options);
    queue.clear();  // chunk files of a dead previous coordinator are stale
    for (std::int64_t lo = 0; lo < total;) {
      if (done[static_cast<std::size_t>(lo)] != 0) {
        ++lo;
        continue;
      }
      std::int64_t hi = lo;
      while (hi < total && hi - lo < options.chunk_points &&
             done[static_cast<std::size_t>(hi)] == 0) {
        ++hi;
      }
      queue.enqueue(lo, hi, 0);
      lo = hi;
    }

    std::vector<pid_t> live;
    // Enough for a sustained kill storm; if something systemic kills every
    // worker instantly, stop respawning and let the merge phase finish the
    // leftovers in-process.
    std::int64_t respawn_budget = 10000;
    const auto spawn_worker = [&] {
      live.push_back(util::spawn_child(
          [&] { return run_explore_worker(spec, options); }));
    };
    if (!queue.idle()) {
      for (int i = 0; i < options.workers; ++i) spawn_worker();
    }
    write_running_status(status_path, total, queue, run_timer.seconds(),
                         live.size(), poison.size());
    util::Stopwatch since_status;

    bool poison_dirty = false;
    while (!queue.idle()) {
      while (const std::optional<util::ChildExit> exit = util::try_wait_any()) {
        live.erase(std::remove(live.begin(), live.end(), exit->pid),
                   live.end());
      }
      if (since_status.seconds() >= 0.5) {
        write_running_status(status_path, total, queue, run_timer.seconds(),
                             live.size(), poison.size());
        since_status.restart();
      }
      for (const util::LeaseQueue::Reclaimed& r : queue.reclaim_expired()) {
        if (r.worker.empty()) continue;  // torn claim: nothing was evaluated
        // The dead worker's journal ends with an intent marker for the
        // point it was inside when it died (a completed point's record
        // overwrites its marker). Two deaths inside the same point
        // quarantine it.
        const util::CheckpointJournal::Scan scan = util::CheckpointJournal::scan(
            journals_dir(options) + "/" + r.worker + ".journal", key);
        for (const auto& [index, payload] : scan.entries) {
          if (payload != kIntentMarker) continue;
          if (index < r.taken_lo || index >= r.chunk.hi) continue;
          ++poison[index];
          poison_dirty = true;
        }
      }
      if (poison_dirty) {
        save_poison(poison_path, poison);
        poison_dirty = false;
      }
      while (static_cast<int>(live.size()) < options.workers &&
             respawn_budget > 0 && !queue.idle()) {
        spawn_worker();
        --respawn_budget;
        kWorkersRespawned.inc();
      }
      if (respawn_budget <= 0 && live.empty()) break;
      ::usleep(25 * 1000);
    }
    // Idle (or out of respawns): the survivors observe the empty queue and
    // exit on their own; reap them all before the merge reads journals.
    for (const pid_t pid : live) (void)util::wait_child(pid);
  }

  // ---- Merge: journals -> table, with bitwise audit --------------------
  ExploreResult result;
  result.points.resize(static_cast<std::size_t>(total));
  std::vector<char> have(static_cast<std::size_t>(total), 0);

  std::map<std::int64_t, std::string> merged;
  const auto absorb = [&](const std::string& path) {
    const util::CheckpointJournal::Scan scan =
        util::CheckpointJournal::scan(path, key);
    if (scan.torn_tail) {
      ++result.torn_tails;
      kMergeTornTails.inc();
    }
    for (const auto& [index, payload] : scan.entries) {
      if (index < 0 || index >= total) continue;
      if (payload == kIntentMarker) continue;
      const auto [it, inserted] = merged.emplace(index, payload);
      if (inserted) continue;
      ++result.duplicates;
      kMergeDuplicates.inc();
      if (it->second != payload) {
        // Two completion records for one grid index MUST be bitwise equal
        // (same index => same inputs => same deterministic evaluation).
        // Divergence means the determinism contract is broken — refuse to
        // pick silently.
        throw util::Error(
            "explore: bitwise audit failed at grid index " +
                std::to_string(index) + " merging '" + path +
                "': duplicate records differ",
            util::ErrorCategory::kInternal);
      }
    }
  };
  for (const std::string& path : list_journal_files(journals_dir(options))) {
    absorb(path);
  }
  for (const auto& [index, payload] : merged) {
    SweepPoint point;
    if (!decode_sweep_point(payload, point)) continue;  // recompute below
    result.points[static_cast<std::size_t>(index)] = std::move(point);
    have[static_cast<std::size_t>(index)] = 1;
    ++result.resumed;
  }

  // ---- Salvage quarantined points in sacrificial children --------------
  // A point that crashed two workers may still be innocent (two random
  // kills landed on it) — or genuinely lethal. Either way the coordinator
  // must not evaluate it in its own image, so each one gets a forked child
  // (sequential, and before the threaded in-process pass below).
  std::vector<std::int64_t> quarantine;
  for (const auto& [index, count] : poison) {
    if (count < options.poison_threshold) continue;
    if (index < 0 || index >= total) continue;
    if (have[static_cast<std::size_t>(index)] == 0) quarantine.push_back(index);
  }
  if (!quarantine.empty()) {
    const std::string salvage_path = journals_dir(options) + "/salvage.journal";
    for (const std::int64_t index : quarantine) {
      const pid_t pid = util::spawn_child([&spec, &salvage_path, key, index] {
        util::CheckpointJournal salvage_journal(salvage_path, key, {true});
        PointEvaluator evaluator(spec);
        const SweepPoint point = evaluator.evaluate(index);
        salvage_journal.append(index, encode_sweep_point(point));
        return 0;
      });
      (void)util::wait_child(pid);
    }
    const util::CheckpointJournal::Scan scan =
        util::CheckpointJournal::scan(salvage_path, key);
    for (const auto& [index, payload] : scan.entries) {
      if (index < 0 || index >= total) continue;
      if (payload == kIntentMarker) continue;
      if (have[static_cast<std::size_t>(index)] != 0) continue;
      SweepPoint point;
      if (!decode_sweep_point(payload, point)) continue;
      result.points[static_cast<std::size_t>(index)] = std::move(point);
      have[static_cast<std::size_t>(index)] = 1;
    }
    for (const std::int64_t index : quarantine) {
      if (have[static_cast<std::size_t>(index)] != 0) continue;
      // The salvage child died too: the point deterministically kills its
      // process. Record it as quarantined rather than poisoning the run.
      SweepPoint& point = result.points[static_cast<std::size_t>(index)];
      point.value = static_cast<double>(index);
      point.result = RankResult{};
      point.status = util::Status::failure(
          util::StatusCode::kInternal,
          "quarantined: evaluation repeatedly crashed its worker");
      have[static_cast<std::size_t>(index)] = 1;
      ++result.quarantined;
      kPointsQuarantined.inc();
    }
  }

  // ---- In-process evaluation of whatever is still missing --------------
  // The whole grid in workers = 0 mode; normally nothing after a worker
  // run. Journaled so a killed coordinator resumes here too.
  std::vector<std::int64_t> missing;
  for (std::int64_t index = 0; index < total; ++index) {
    if (have[static_cast<std::size_t>(index)] == 0) missing.push_back(index);
  }
  if (!missing.empty()) {
    util::CheckpointJournal inline_journal(
        journals_dir(options) + "/inline.journal", key,
        {options.fsync_journal});
    PointEvaluator evaluator(spec);
    util::ThreadPool::shared().parallel_for(
        missing.size(), options.jobs, [&](std::size_t i) {
          const std::int64_t index = missing[i];
          SweepPoint point = evaluator.evaluate(index);
          inline_journal.append(index, encode_sweep_point(point));
          result.points[static_cast<std::size_t>(index)] = std::move(point);
        });
  }

  for (std::int64_t index = 0; index < total; ++index) {
    const SweepPoint& point = result.points[static_cast<std::size_t>(index)];
    if (point.status.ok()) ++result.ok;
  }
  result.failed = total - result.ok - result.quarantined;

  // ---- Pareto front: normalized rank up, repeater area down ------------
  std::vector<std::int64_t> order;
  for (std::int64_t index = 0; index < total; ++index) {
    if (result.points[static_cast<std::size_t>(index)].status.ok()) {
      order.push_back(index);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    const RankResult& ra = result.points[static_cast<std::size_t>(a)].result;
    const RankResult& rb = result.points[static_cast<std::size_t>(b)].result;
    if (ra.normalized != rb.normalized) return ra.normalized > rb.normalized;
    if (ra.repeater_area_used != rb.repeater_area_used) {
      return ra.repeater_area_used < rb.repeater_area_used;
    }
    return a < b;
  });
  double best_area = std::numeric_limits<double>::infinity();
  for (const std::int64_t index : order) {
    const RankResult& r = result.points[static_cast<std::size_t>(index)].result;
    if (r.repeater_area_used < best_area) {
      best_area = r.repeater_area_used;
      result.pareto.push_back(index);
    }
  }

  write_explore_csv(options.dir + "/points.csv", spec, result, false);
  write_explore_csv(options.dir + "/pareto.csv", spec, result, true);
  merge_event_logs(options);
  write_final_status(status_path, total, result, run_timer.seconds());
  if (events.enabled()) {
    util::Json fields;
    fields["ok"] = result.ok;
    fields["failed"] = result.failed;
    fields["quarantined"] = result.quarantined;
    fields["resumed"] = result.resumed;
    events.emit(util::Severity::kInfo, "explore.done", std::move(fields));
  }
  util::MetricsRegistry::instance().save(options.dir +
                                         "/metrics/coordinator.prom");
  return result;
}

// ---------------------------------------------------------------------------
// CSV

void write_explore_csv(const std::string& path, const ExploreSpec& spec,
                       const ExploreResult& result, bool pareto_only) {
  std::string out =
      "index,node,rent_p,target_model,K,M,C,R,status,rank,normalized,"
      "prefix_bunches,refined_wires,repeaters,repeater_area_m2,total_wires\n";
  const auto row = [&](std::int64_t index) {
    const ExploreSpec::Scenario s = spec.scenario(index);
    const RankOptions opt = spec.options_at(s);
    const SweepPoint& point = result.points[static_cast<std::size_t>(index)];
    const RankResult& r = point.result;
    out += std::to_string(index);
    out += ',';
    out += spec.nodes()[s.node];
    out += ',';
    out += util::format_double_shortest(spec.rent_ps()[s.rent]);
    out += ',';
    out += delay::to_string(opt.target_model);
    out += ',';
    out += util::format_double_shortest(opt.ild_permittivity);
    out += ',';
    out += util::format_double_shortest(opt.miller_factor);
    out += ',';
    out += util::format_double_shortest(opt.clock_frequency);
    out += ',';
    out += util::format_double_shortest(opt.repeater_fraction);
    out += ',';
    out += point.status.label();  // flattens commas/newlines
    out += ',';
    out += std::to_string(r.rank);
    out += ',';
    out += util::format_double_shortest(r.normalized);
    out += ',';
    out += std::to_string(r.prefix_bunches);
    out += ',';
    out += std::to_string(r.refined_wires);
    out += ',';
    out += std::to_string(r.repeater_count);
    out += ',';
    out += util::format_double_shortest(r.repeater_area_used);
    out += ',';
    out += std::to_string(r.total_wires);
    out += '\n';
  };
  if (pareto_only) {
    for (const std::int64_t index : result.pareto) row(index);
  } else {
    for (std::int64_t index = 0;
         index < static_cast<std::int64_t>(result.points.size()); ++index) {
      row(index);
    }
  }
  util::atomic_write_file(path, out);
}

}  // namespace iarank::core
