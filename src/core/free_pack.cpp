#include "src/core/free_pack.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"
#include "src/util/fault_injector.hpp"
#include "src/util/metrics.hpp"

namespace iarank::core {

namespace {

/// Relative slack for floating-point capacity comparisons.
constexpr double kAreaTol = 1e-9;

const util::FaultSite kSiteFreePack{"core.free_pack"};

// One "bunch take" is a (bunch, pair) placement decision — the packer's
// unit of work. Deterministic per call, hence across thread counts.
util::Counter& kFreePackCalls = util::MetricsRegistry::counter(
    "iarank_free_pack_calls_total", "free_pack invocations");
util::Counter& kFreePackTakes = util::MetricsRegistry::counter(
    "iarank_free_pack_bunch_takes_total",
    "(bunch, pair) takes performed by the packer");

}  // namespace

namespace {

/// The packing loop shared by the detailed and feasibility-only entry
/// points. `out == nullptr` skips placement recording entirely — the DP's
/// verify path calls this thousands of times per sweep and must stay off
/// the heap (DESIGN.md Section 10.6). The take counter is maintained
/// either way, so the free-pack metrics are identical on both paths.
bool pack_core(const Instance& inst, const FreePackInput& input,
               bool count_metrics, std::vector<BunchPlacement>* out) {
  util::maybe_inject(kSiteFreePack);
  if (count_metrics) kFreePackCalls.inc();
  const std::size_t m = inst.pair_count();
  const std::size_t n_bunches = inst.bunch_count();
  iarank::util::require(input.first_pair <= m,
                        "free_pack: first_pair out of range");
  iarank::util::require(input.first_bunch <= n_bunches,
                        "free_pack: first_bunch out of range");
  if (input.first_bunch < n_bunches) {
    iarank::util::require(
        input.first_bunch_offset >= 0 &&
            input.first_bunch_offset <= inst.bunch(input.first_bunch).count,
        "free_pack: first_bunch_offset out of range");
  }

  // Total wires still to place.
  std::int64_t to_place = inst.total_wires() -
                          inst.wires_before(input.first_bunch) -
                          (input.first_bunch < n_bunches
                               ? input.first_bunch_offset
                               : 0);
  if (input.first_pair >= m) {
    return to_place == 0;
  }

  const double die = inst.pair_capacity();
  const double tol = die * kAreaTol;
  const double total_wires = static_cast<double>(inst.total_wires());

  // Walk bunches from the shortest backward.
  std::size_t b = n_bunches;  // b-1 is the current bunch
  std::int64_t remaining_in_bunch = 0;
  auto advance_bunch = [&]() -> bool {
    while (remaining_in_bunch == 0) {
      if (b == input.first_bunch) return false;
      --b;
      remaining_in_bunch = inst.bunch(b).count;
      if (b == input.first_bunch) {
        remaining_in_bunch -= input.first_bunch_offset;
        if (remaining_in_bunch == 0) return false;
      }
    }
    return true;
  };

  std::int64_t takes = 0;   // (bunch, pair) placement rows decided
  std::int64_t packed = 0;  // free wires placed in pairs >= current pair

  for (std::size_t qi = m; qi-- > input.first_pair;) {
    const std::size_t q = qi;
    const bool fixed_blockage = (q == input.first_pair);
    const double initial_area =
        fixed_blockage ? input.area_used_first_pair : 0.0;
    double area = initial_area;

    while (advance_bunch()) {
      const Bunch& bunch = inst.bunch(b);
      const double per_wire = bunch.length * inst.pair(q).pitch;
      const std::int64_t avail = remaining_in_bunch;
      std::int64_t w = 0;

      if (fixed_blockage) {
        // Blockage here is fixed: only the prefix pairs sit above.
        const double blocked = inst.blockage(q, input.wires_above_first,
                                             input.repeaters_above_first);
        const double free_area = die + tol - blocked - area;
        if (per_wire <= 0.0) {
          w = free_area >= 0.0 ? avail : 0;
        } else {
          w = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::floor(free_area / per_wire)), 0,
              avail);
        }
      } else {
        // Blockage shrinks as wires are packed at or below this pair:
        //   area + w*per_wire + blockage(q, T - packed - w, Z) <= A_d.
        const double va = inst.pair(q).via_area;
        const double vw = inst.vias().vias_per_wire;
        const double vr = inst.vias().vias_per_repeater;
        const double coef = per_wire - va * vw;
        if (coef <= 0.0) {
          // Shadow-dominant: each wire moved down to this pair frees at
          // least its own wiring area in via blockage, so the full take is
          // never worse — even if the pair is over-blocked right now, later
          // (longer) bunches keep relaxing it. Legality of the final load
          // is settled by the close-of-pair check below.
          w = avail;
        } else {
          const double fixed_block =
              va * (vr * input.repeaters_total +
                    vw * (total_wires - static_cast<double>(packed)));
          const double rhs = die + tol - area - fixed_block;
          w = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::floor(rhs / coef)), 0, avail);
        }
      }

      if (w <= 0) break;  // pair q is full for this (and any longer) bunch
      area += static_cast<double>(w) * per_wire;
      packed += w;
      remaining_in_bunch -= w;
      to_place -= w;
      ++takes;
      if (out != nullptr) out->push_back({b, q, w, 0});
      if (w < avail) break;  // pair q filled mid-bunch
    }

    // Close of pair q: the per-pair constraint must hold for the final
    // load — including a pair left empty, whose routing area is still
    // consumed by the via shadow of everything that stays above it.
    const double wires_above =
        fixed_blockage ? input.wires_above_first
                       : total_wires - static_cast<double>(packed);
    const double reps_above = fixed_blockage ? input.repeaters_above_first
                                             : input.repeaters_total;
    if (area > die + tol - inst.blockage(q, wires_above, reps_above)) {
      if (count_metrics) kFreePackTakes.inc(takes);
      return false;
    }
  }

  if (count_metrics) kFreePackTakes.inc(takes);
  return to_place == 0;  // wires left over fail the topmost available pair
}

}  // namespace

std::optional<std::vector<BunchPlacement>> free_pack_detailed(
    const Instance& inst, const FreePackInput& input, bool count_metrics) {
  std::vector<BunchPlacement> placements;
  if (!pack_core(inst, input, count_metrics, &placements)) {
    return std::nullopt;
  }
  return placements;
}

std::optional<std::vector<PairLoad>> free_pack(const Instance& inst,
                                               const FreePackInput& input) {
  const auto detail = free_pack_detailed(inst, input);
  if (!detail) return std::nullopt;

  // Aggregate per pair, emitting top-pair-first.
  std::vector<PairLoad> loads;
  for (std::size_t q = input.first_pair; q < inst.pair_count(); ++q) {
    PairLoad load{q, 0, 0.0};
    for (const BunchPlacement& p : *detail) {
      if (p.pair != q) continue;
      load.wires += p.wires;
      load.wire_area += inst.wire_area(p.bunch, q, p.wires);
    }
    if (load.wires > 0) loads.push_back(load);
  }
  return loads;
}

bool free_pack_feasible(const Instance& inst, const FreePackInput& input,
                        bool count_metrics) {
  return pack_core(inst, input, count_metrics, nullptr);
}

}  // namespace iarank::core
