#include "src/core/report.hpp"

#include <locale>
#include <ostream>
#include <sstream>

#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"

namespace iarank::core {

void write_result_csv(std::ostream& os, const RankResult& result) {
  // CSV is a machine format: pin the classic locale so doubles keep a
  // '.' decimal point under any process locale.
  os.imbue(std::locale::classic());
  os << "key,value\n";
  os << "rank," << result.rank << "\n";
  os << "normalized," << result.normalized << "\n";
  os << "total_wires," << result.total_wires << "\n";
  os << "all_assigned," << (result.all_assigned ? 1 : 0) << "\n";
  os << "prefix_bunches," << result.prefix_bunches << "\n";
  os << "refined_wires," << result.refined_wires << "\n";
  os << "repeater_count," << result.repeater_count << "\n";
  os << "repeater_area_m2," << result.repeater_area_used << "\n";
  if (!result.usage.empty()) {
    os << "pair,wires_total,wires_meeting,repeaters,wire_area_m2,"
          "blockage_m2\n";
    for (const PairUsage& u : result.usage) {
      os << u.pair_name << "," << u.wires_total << ","
         << u.wires_meeting_delay << "," << u.repeaters << "," << u.wire_area
         << "," << u.via_blockage << "\n";
    }
  }
}

void write_sweep_csv(std::ostream& os, const SweepResult& sweep) {
  os.imbue(std::locale::classic());
  os << "# " << to_string(sweep.parameter) << "\n";
  os << "value,normalized_rank,rank,repeaters\n";
  for (const SweepPoint& p : sweep.points) {
    if (!p.status.ok()) {
      // Status::label() flattens commas, so the reason stays one field.
      os << p.value << "," << p.status.label() << ",n/a,n/a\n";
      continue;
    }
    os << p.value << "," << p.result.normalized << "," << p.result.rank << ","
       << p.result.repeater_count << "\n";
  }
}

namespace {

/// Renders through a buffer and publishes with write-temp-fsync-rename:
/// a crashed or failed save never leaves a truncated artefact behind.
template <typename Payload, typename Writer>
void save_atomic(const std::string& path, const Payload& payload,
                 Writer&& writer) {
  std::ostringstream buffer;
  writer(buffer, payload);
  iarank::util::atomic_write_file(path, buffer.str());
}

}  // namespace

void save_result_csv(const std::string& path, const RankResult& result) {
  save_atomic(path, result,
              [](std::ostream& os, const RankResult& r) {
                write_result_csv(os, r);
              });
}

void save_sweep_csv(const std::string& path, const SweepResult& sweep) {
  save_atomic(path, sweep,
              [](std::ostream& os, const SweepResult& s) {
                write_sweep_csv(os, s);
              });
}

}  // namespace iarank::core
