#include "src/core/report.hpp"

#include <fstream>
#include <ostream>

#include "src/util/error.hpp"

namespace iarank::core {

void write_result_csv(std::ostream& os, const RankResult& result) {
  os << "key,value\n";
  os << "rank," << result.rank << "\n";
  os << "normalized," << result.normalized << "\n";
  os << "total_wires," << result.total_wires << "\n";
  os << "all_assigned," << (result.all_assigned ? 1 : 0) << "\n";
  os << "prefix_bunches," << result.prefix_bunches << "\n";
  os << "refined_wires," << result.refined_wires << "\n";
  os << "repeater_count," << result.repeater_count << "\n";
  os << "repeater_area_m2," << result.repeater_area_used << "\n";
  if (!result.usage.empty()) {
    os << "pair,wires_total,wires_meeting,repeaters,wire_area_m2,"
          "blockage_m2\n";
    for (const PairUsage& u : result.usage) {
      os << u.pair_name << "," << u.wires_total << ","
         << u.wires_meeting_delay << "," << u.repeaters << "," << u.wire_area
         << "," << u.via_blockage << "\n";
    }
  }
}

void write_sweep_csv(std::ostream& os, const SweepResult& sweep) {
  os << "# " << to_string(sweep.parameter) << "\n";
  os << "value,normalized_rank,rank,repeaters\n";
  for (const SweepPoint& p : sweep.points) {
    os << p.value << "," << p.result.normalized << "," << p.result.rank << ","
       << p.result.repeater_count << "\n";
  }
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  iarank::util::require(out.good(), "report: cannot open '" + path + "'");
  return out;
}

}  // namespace

void save_result_csv(const std::string& path, const RankResult& result) {
  auto out = open_or_throw(path);
  write_result_csv(out, result);
}

void save_sweep_csv(const std::string& path, const SweepResult& sweep) {
  auto out = open_or_throw(path);
  write_sweep_csv(out, sweep);
}

}  // namespace iarank::core
