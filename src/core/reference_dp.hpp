/// \file reference_dp.hpp
/// \brief Paper-faithful 4-D boolean dynamic program (Algorithms 1-3).
///
/// Materializes the paper's table M[i, j, r, i']: i bunches assigned to
/// the top j layer-pairs, i' of them (a prefix) meeting delay using at
/// most r units of repeater area, with the remaining bunches packable into
/// the remaining pairs ignoring delay (checked by greedy_assign / M'').
/// Repeater area is discretized into `area_quanta` equal units of the
/// budget, with per-chunk areas rounded UP (conservative), and repeater
/// counts are derived from area through the paper's Eq. 5 approximation
/// z_r = r / s_j using the receiving pair's repeater size.
///
/// Two documented repairs of gaps in the printed pseudocode:
///  * Initialize_M (Alg. 2) only sets diagonal entries (all assigned wires
///    meet delay); we also set i' < i entries so a prefix may break on the
///    topmost pair.
///  * Eq. 3's l^2/eta^2 term is used as l^2/eta (see delay/model.hpp).
///
/// Complexity is the paper's O(m n^4 A_R^3) shape — use only on small
/// instances. The production dp_rank() is the exact, fast engine; this
/// one exists to validate the paper's own formulation against the
/// brute-force oracle and the production DP.

#pragma once

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Discretization control for the reference DP.
struct ReferenceDpOptions {
  int area_quanta = 64;  ///< number of repeater-area units (paper's A_R)
};

/// Runs Algorithms 1-3 on the instance. Because area quantization rounds
/// up, the result is a lower bound on the exact rank, converging to it as
/// area_quanta grows. Throws util::Error when the table would exceed
/// ~5e7 cells.
[[nodiscard]] RankResult reference_dp_rank(const Instance& inst,
                                           const ReferenceDpOptions& options = {});

}  // namespace iarank::core
