/// \file greedy_rank.hpp
/// \brief Greedy top-down rank computation — the baseline the paper's
///        Figure 2 proves suboptimal.
///
/// Wires are taken longest-first and placed on the highest layer-pair with
/// room; repeaters are inserted per wire until its target is met, first
/// come first served against the budget. The first wire that cannot meet
/// its target (budget exhausted, no feasible repeatering, or nothing
/// proactively saved for cheaper pairs below) ends the delay-met prefix;
/// remaining wires are packed on for the Definition-3 feasibility check.
/// dp_rank() >= greedy_rank() always; strict on Figure-2-like instances.
///
/// Emits a full placement certificate (RankResult::placements), so greedy
/// results re-validate under core::verify_placements just like the DP's —
/// the differential self-check harness relies on this. If a pair it skips
/// (or a trailing pair below the packing) is over-blocked by via shadows
/// from above, no greedy completion is legal and the result degrades to
/// Definition 3 (all_assigned = false, rank 0); the DP may still find a
/// feasible assignment there.

#pragma once

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Computes the greedy assignment's rank on the same Instance the DP uses.
[[nodiscard]] RankResult greedy_rank(const Instance& inst);

}  // namespace iarank::core
