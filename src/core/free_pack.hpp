/// \file free_pack.hpp
/// \brief Delay-free wire packing — the paper's greedy_assign (Alg. 5, M'').
///
/// Packs a suffix of the bunch list into the lower layer-pairs bottom-up,
/// ignoring delay, accounting for via blockage from wires and repeaters on
/// higher pairs. Paper Lemma 1: bottom-up packing uses the minimum wiring
/// demand in upper pairs, so it is optimal — if it fails, no delay-free
/// assignment of the suffix exists. Our blockage term for a pair only
/// *shrinks* as more wires are packed below it (fewer wires remain above),
/// which preserves the exchange argument.
///
/// Bunches may split across pairs here: delay-free wires are independent,
/// so packing at wire granularity matches the paper's wire-at-a-time loop.
///
/// The per-pair constraint applies to every pair, including pairs the
/// packer leaves empty: the via shadow of wires and repeaters that stay
/// above a pair consumes its routing area whether or not a wire lands
/// there (DESIGN.md Section 6). When a pair's via shadow exceeds the
/// per-wire wiring area (shadow-dominant regime), moving a whole group of
/// wires down can be legal where moving one is not; the packer handles
/// both by taking full bunches in that regime and validating each pair's
/// final load as it closes.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/instance.hpp"
#include "src/core/rank_result.hpp"

namespace iarank::core {

/// Where the delay-met prefix left off and what it consumed.
struct FreePackInput {
  std::size_t first_pair = 0;   ///< topmost pair still accepting wires
  std::size_t first_bunch = 0;  ///< first (longest) unassigned bunch
  std::int64_t first_bunch_offset = 0;  ///< wires of that bunch already placed
  double area_used_first_pair = 0.0;    ///< wiring area already in first_pair
  double wires_above_first = 0.0;       ///< wires on pairs < first_pair
  double repeaters_above_first = 0.0;   ///< repeaters on pairs < first_pair
  double repeaters_total = 0.0;         ///< all repeaters (pairs <= first_pair)
};

/// Wires placed on one pair by the packer.
struct PairLoad {
  std::size_t pair = 0;
  std::int64_t wires = 0;
  double wire_area = 0.0;
};

/// Result: per-pair loads for pairs first_pair..m-1 (bottom pair last in
/// the vector's natural order — entries are emitted top-first), or nullopt
/// when the suffix does not fit (paper Definition 3 territory).
[[nodiscard]] std::optional<std::vector<PairLoad>> free_pack(
    const Instance& inst, const FreePackInput& input);

/// Convenience: feasibility only. `count_metrics = false` leaves the
/// process-wide free-pack counters untouched — used by the DP's
/// warm-start verification, whose occurrence depends on sweep scheduling
/// and must not perturb the deterministic counter totals (the per-solve
/// work it replaces is tallied under the warm-start counters instead).
[[nodiscard]] bool free_pack_feasible(const Instance& inst,
                                      const FreePackInput& input,
                                      bool count_metrics = true);

/// Detailed variant: per (pair, bunch) placements of the packed suffix
/// (meeting_delay is 0 for all rows — this is the delay-free phase), or
/// nullopt when the suffix does not fit. free_pack() aggregates this.
[[nodiscard]] std::optional<std::vector<BunchPlacement>> free_pack_detailed(
    const Instance& inst, const FreePackInput& input,
    bool count_metrics = true);

}  // namespace iarank::core
