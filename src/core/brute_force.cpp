#include "src/core/brute_force.hpp"

#include <algorithm>
#include <vector>

#include "src/util/error.hpp"

namespace iarank::core {

namespace {

constexpr double kRelTol = 1e-9;

/// Number of ordered partitions of n items into m chunks: C(n+m-1, m-1).
double partition_count(std::size_t n, std::size_t m) {
  double result = 1.0;
  for (std::size_t i = 1; i < m; ++i) {
    result *= static_cast<double>(n + i) / static_cast<double>(i);
  }
  return result;
}

class Enumerator {
 public:
  explicit Enumerator(const Instance& inst)
      : inst_(inst), m_(inst.pair_count()), n_(inst.bunch_count()) {}

  RankResult run() {
    std::vector<std::size_t> chunk_end(m_, 0);  // exclusive end per pair
    recurse(chunk_end, 0, 0);

    RankResult res;
    res.total_wires = inst_.total_wires();
    res.all_assigned = any_feasible_;
    res.rank = any_feasible_ ? best_rank_ : 0;
    res.prefix_bunches = any_feasible_ ? best_prefix_ : 0;
    res.normalized = res.total_wires > 0
                         ? static_cast<double>(res.rank) /
                               static_cast<double>(res.total_wires)
                         : 0.0;
    return res;
  }

 private:
  const Instance& inst_;
  const std::size_t m_;
  const std::size_t n_;
  std::int64_t best_rank_ = -1;
  std::int64_t best_prefix_ = 0;
  bool any_feasible_ = false;

  void recurse(std::vector<std::size_t>& chunk_end, std::size_t pair,
               std::size_t assigned) {
    if (pair == m_) {
      if (assigned == n_) evaluate(chunk_end);
      return;
    }
    for (std::size_t take = 0; take <= n_ - assigned; ++take) {
      chunk_end[pair] = assigned + take;
      recurse(chunk_end, pair + 1, assigned + take);
    }
  }

  /// For this partition, find the largest feasible delay-met prefix.
  void evaluate(const std::vector<std::size_t>& chunk_end) {
    for (std::size_t prefix = n_ + 1; prefix-- > 0;) {
      if (feasible(chunk_end, prefix)) {
        any_feasible_ = true;
        const std::int64_t rank = inst_.wires_before(prefix);
        if (rank > best_rank_) {
          best_rank_ = rank;
          best_prefix_ = static_cast<std::int64_t>(prefix);
        }
        return;  // smaller prefixes for this partition cannot beat it
      }
    }
  }

  [[nodiscard]] bool feasible(const std::vector<std::size_t>& chunk_end,
                              std::size_t prefix) const {
    // Delay feasibility and budget for prefix bunches, via the instance's
    // prefix-cost tables (shared with every other engine).
    double rep_area = 0.0;
    std::vector<double> reps_per_pair(m_, 0.0);
    std::size_t start = 0;
    for (std::size_t q = 0; q < m_; ++q) {
      const std::size_t met_end = std::min(chunk_end[q], prefix);
      if (met_end > start) {
        if (inst_.first_infeasible(q, start) < met_end) return false;
        rep_area += inst_.prefix_repeater_area(q, met_end) -
                    inst_.prefix_repeater_area(q, start);
        reps_per_pair[q] += static_cast<double>(
            inst_.prefix_repeater_count(q, met_end) -
            inst_.prefix_repeater_count(q, start));
      }
      start = chunk_end[q];
    }
    const double budget = inst_.repeater_budget();
    if (rep_area > budget + budget * kRelTol + 1e-30) return false;

    // Area + blockage per pair.
    double wires_above = 0.0;
    double reps_above = 0.0;
    start = 0;
    for (std::size_t q = 0; q < m_; ++q) {
      const double wire_area = inst_.prefix_wire_area(q, chunk_end[q]) -
                               inst_.prefix_wire_area(q, start);
      const double wires_here =
          static_cast<double>(inst_.wires_before(chunk_end[q]) -
                              inst_.wires_before(start));
      const double capacity =
          inst_.pair_capacity() - inst_.blockage(q, wires_above, reps_above);
      if (wire_area > capacity + inst_.pair_capacity() * kRelTol) return false;
      wires_above += wires_here;
      reps_above += reps_per_pair[q];
      start = chunk_end[q];
    }
    return true;
  }
};

}  // namespace

RankResult brute_force_rank(const Instance& inst) {
  iarank::util::require(
      partition_count(inst.bunch_count(), inst.pair_count()) < 2e7,
      "brute_force_rank: instance too large to enumerate");
  Enumerator en(inst);
  return en.run();
}

}  // namespace iarank::core
