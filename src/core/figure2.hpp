/// \file figure2.hpp
/// \brief The paper's Figure 2 counterexample: greedy rank 2, optimal 4.
///
/// Four equal-length wires, two layer-pairs, a budget of eight repeaters.
/// The upper pair has much larger RC delay, so a wire assigned there needs
/// four repeaters against one on the lower pair. Greedy top-down fills the
/// upper pair with two wires (8 repeaters — the whole budget); the two
/// remaining wires get no repeaters and fail: rank 2. The optimum places
/// one wire up (4 repeaters) and three down (3 repeaters): rank 4.

#pragma once

#include "src/core/instance.hpp"

namespace iarank::core {

/// Constants of the constructed counterexample.
struct Figure2Expectation {
  std::int64_t greedy_rank = 2;
  std::int64_t optimal_rank = 4;
  std::int64_t repeater_budget = 8;
};

/// Builds the counterexample instance (abstract units, via-free).
[[nodiscard]] Instance figure2_instance();

/// The ranks the construction is designed to produce.
[[nodiscard]] Figure2Expectation figure2_expectation();

}  // namespace iarank::core
