/// Experiment E6 — paper Figure 2: suboptimality of greedy top-down
/// assignment. Reproduces the constructed counterexample (greedy rank 2
/// vs optimal rank 4 under an 8-repeater budget), then quantifies the
/// greedy/DP gap on randomized instances and on the physical baseline.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/brute_force.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/figure2.hpp"
#include "src/core/greedy_rank.hpp"
#include "tests/helpers.hpp"

int main() {
  using namespace iarank;
  std::cout << "E6 / Figure 2: suboptimality of greedy assignment\n\n";

  // --- the paper's counterexample -----------------------------------------
  const core::Instance fig2 = core::figure2_instance();
  const auto greedy = core::greedy_rank(fig2);
  const auto dp = core::dp_rank(fig2);
  const auto oracle = core::brute_force_rank(fig2);

  util::TextTable table("Figure 2 counterexample (4 wires, 2 pairs, 8 repeaters)");
  table.set_header({"engine", "rank", "repeaters", "matches_paper"});
  table.add_row({"greedy top-down", std::to_string(greedy.rank),
                 std::to_string(greedy.repeater_count),
                 greedy.rank == 2 ? "yes (rank 2)" : "NO"});
  table.add_row({"DP (optimal)", std::to_string(dp.rank),
                 std::to_string(dp.repeater_count),
                 dp.rank == 4 ? "yes (rank 4)" : "NO"});
  table.add_row({"brute force", std::to_string(oracle.rank), "-",
                 oracle.rank == 4 ? "yes (rank 4)" : "NO"});
  std::cout << table << "\n";

  // --- randomized gap statistics -------------------------------------------
  int strict_wins = 0;
  int ties = 0;
  std::int64_t total_gap = 0;
  const int trials = 400;
  for (int seed = 0; seed < trials; ++seed) {
    const auto inst =
        iarank::testing::random_instance(static_cast<std::uint64_t>(seed));
    const auto g = core::greedy_rank(inst);
    const auto d = core::dp_rank(inst);
    if (d.rank > g.rank) {
      ++strict_wins;
      total_gap += d.rank - g.rank;
    } else {
      ++ties;
    }
  }
  util::TextTable stats("greedy vs DP on " + std::to_string(trials) +
                        " random instances");
  stats.set_header({"outcome", "count"});
  stats.add_row({"DP strictly better", std::to_string(strict_wins)});
  stats.add_row({"tie", std::to_string(ties)});
  stats.add_row({"total wires recovered by DP", std::to_string(total_gap)});
  std::cout << stats << "\n";

  // --- physical baseline ------------------------------------------------------
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  const auto phys_dp = core::compute_rank(setup.design, setup.options, wld);
  const auto phys_greedy =
      core::compute_rank_greedy(setup.design, setup.options, wld);
  util::TextTable phys("130nm / 1M gate baseline");
  phys.set_header({"engine", "normalized_rank"});
  phys.add_row({"greedy", util::TextTable::num(phys_greedy.normalized, 6)});
  phys.add_row({"DP", util::TextTable::num(phys_dp.normalized, 6)});
  std::cout << phys;
  std::cout << "(note: the DP is exact at bunch granularity — "
            << setup.options.bunch_size
            << " wires — while greedy splits bunches wire-by-wire, so on\n"
               "coarsened physical instances the two may differ by up to one "
               "bunch either way;\nthe randomized table above compares them "
               "at equal granularity.)\n";
  return 0;
}
