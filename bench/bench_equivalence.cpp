/// Experiment E5 — the paper's Section 5.2 headline: "42% reduction in
/// Miller coupling factor achieves the same rank improvement as a 38%
/// reduction in inter-layer dielectric permittivity" for the 130 nm / 1M
/// gate design (paper: K 3.9 -> 2.4 matches M 2.0 -> 1.15, rank ~0.50).
///
/// We sweep both parameters on fine grids and, for a ladder of target
/// rank levels, report the equivalent fractional reductions in K and M.

#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sweep.hpp"
#include "src/util/numeric.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E5 / Section 5.2 headline: K-vs-M rank equivalence",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const auto k_sweep = core::sweep_parameter(
      setup.design, setup.options, wld,
      core::SweepParameter::kIldPermittivity,
      util::linspace(3.9, 1.8, 43), 4);
  const auto m_sweep = core::sweep_parameter(
      setup.design, setup.options, wld, core::SweepParameter::kMillerFactor,
      util::linspace(2.0, 1.0, 41), 4);

  const double base = k_sweep.points.front().result.normalized;
  std::cout << "Baseline normalized rank: " << util::TextTable::num(base, 4)
            << " (paper 0.3973)\n\n";

  util::TextTable table("equivalent K and M reductions per rank target");
  table.set_header({"target_rank", "K_value", "K_reduction_%", "M_value",
                    "M_reduction_%", "ratio_M/K"});
  for (const double gain : {1.05, 1.10, 1.15, 1.20, 1.26, 1.32, 1.39}) {
    const double target = base * gain;
    const double k = core::value_reaching_rank(k_sweep, target);
    const double m = core::value_reaching_rank(m_sweep, target);
    if (std::isnan(k) || std::isnan(m)) continue;
    const double k_red = 100.0 * (3.9 - k) / 3.9;
    const double m_red = 100.0 * (2.0 - m) / 2.0;
    table.add_row({util::TextTable::num(target, 4),
                   util::TextTable::num(k, 3),
                   util::TextTable::num(k_red, 1),
                   util::TextTable::num(m, 3),
                   util::TextTable::num(m_red, 1),
                   util::TextTable::num(m_red / k_red, 2)});
  }
  std::cout << table;
  std::cout << "\nPaper's single data point: rank ~0.50 at K reduction 38% "
               "== M reduction 42.5% (ratio 1.12).\n";
  return 0;
}
