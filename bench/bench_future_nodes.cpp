/// Future-node projection — quantifies the paper's concluding claim: "it
/// is not possible to enable future MPU-class designs by material
/// improvements alone". The 130 nm node is projected to 90/65/45 nm by
/// constant-field scaling (wire resistance per length grows as 1/s^2)
/// and the baseline rank is evaluated at each node with (a) no material
/// help, (b) aggressive low-k (K = 2.2), (c) low-k + full shielding
/// (M = 1), and (d) the same plus a doubled repeater budget — showing
/// that only the combined material + design lever keeps rank from
/// collapsing as the node shrinks.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/tech/scaling.hpp"
#include "src/util/units.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;
  const core::PaperSetup base_setup = core::paper_baseline();
  bench::print_header(
      "future-node projection: can materials alone carry the rank?",
      base_setup);
  const wld::Wld wld = core::default_wld(base_setup.design);

  for (const tech::DeviceScaling devices :
       {tech::DeviceScaling::kFrozen, tech::DeviceScaling::kIdeal}) {
    util::TextTable table(devices == tech::DeviceScaling::kFrozen
                              ? "frozen devices (wire-limited pessimism)"
                              : "ideal constant-field devices");
    table.set_header({"node", "baseline", "low-k(2.2)", "+shield(M=1)",
                      "+budget(R=0.5)"});

    for (const double nm : {130.0, 90.0, 65.0, 45.0}) {
      core::DesignSpec design = base_setup.design;
      if (nm < 130.0) {
        // Project the calibrated node; keep the die (gate pitch) fixed so
        // the same WLD embedding gets harder purely through wire RC.
        const double keep_pitch = design.node.gate_pitch();
        design.node =
            tech::scale_node(design.node, nm * units::nm, devices);
        design.node.gate_pitch_factor = keep_pitch / design.node.feature_size;
      }

      auto rank_with = [&](double k, double m, double r) {
        core::RankOptions o = base_setup.options;
        o.ild_permittivity = k;
        o.miller_factor = m;
        o.repeater_fraction = r;
        return core::compute_rank(design, o, wld).normalized;
      };

      table.add_row({util::TextTable::num(nm, 0) + "nm",
                     util::TextTable::num(rank_with(3.9, 2.0, 0.4), 4),
                     util::TextTable::num(rank_with(2.2, 2.0, 0.4), 4),
                     util::TextTable::num(rank_with(2.2, 1.0, 0.4), 4),
                     util::TextTable::num(rank_with(2.2, 1.0, 0.5), 4)});
    }
    std::cout << table << "\n";
  }

  std::cout << "Reading: with frozen devices (repeaters stop getting\n"
               "cheaper) the rank collapses as wires worsen 1/s^2, and\n"
               "material levers recover only part of it — the paper's\n"
               "'materials alone cannot enable future designs'. With ideal\n"
               "device scaling the repeater budget stretches faster than\n"
               "wires degrade and the metric survives — locating the paper's\n"
               "claim precisely in the device-scaling assumption.\n";
  return 0;
}
