/// Modelling ablation — isolates each modelling choice's effect on the
/// baseline rank: capacitance model, via accounting, boundary refinement,
/// driver-area reconciliation (paper footnote 3), target-delay model and
/// coarsening. The rows quantify which choices the headline numbers
/// actually depend on.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/greedy_rank.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("modelling ablation at the Table 2 baseline", setup);
  const wld::Wld wld = core::default_wld(setup.design);

  const auto base = core::compute_rank(setup.design, setup.options, wld);

  util::TextTable table("one change at a time vs baseline");
  table.set_header({"variant", "normalized_rank", "delta"});
  auto row = [&](const std::string& name, const core::RankOptions& opts) {
    const auto r = core::compute_rank(setup.design, opts, wld);
    table.add_row({name, util::TextTable::num(r.normalized, 4),
                   util::TextTable::num(r.normalized - base.normalized, 4)});
  };

  table.add_row({"baseline (paper regime)",
                 util::TextTable::num(base.normalized, 4), "0.0000"});

  {
    core::RankOptions o = setup.options;
    o.cap_model = tech::CapacitanceModel::kSakuraiTamaru;
    row("Sakurai-Tamaru capacitance (fringe terms)", o);
  }
  {
    core::RankOptions o = setup.options;
    o.vias = {0.0, 0.0};
    row("via blockage disabled", o);
  }
  {
    core::RankOptions o = setup.options;
    o.vias.vias_per_wire = 4.0;
    row("doubled wire via count (v = 4)", o);
  }
  {
    core::RankOptions o = setup.options;
    o.refine_boundary = false;
    row("boundary refinement off (pure bunch granularity)", o);
  }
  {
    core::RankOptions o = setup.options;
    o.charge_drivers = true;
    row("drivers charged to budget (paper footnote 3)", o);
  }
  {
    core::RankOptions o = setup.options;
    o.min_repeater_spacing = 0.0;
    row("no minimum repeater spacing", o);
  }
  {
    core::RankOptions o = setup.options;
    o.bin_window = 1.0;
    row("binning (1-pitch window) before bunching", o);
  }
  {
    core::RankOptions o = setup.options;
    o.pair_capacity_factor = 2.0;
    row("full 2-layer routing capacity", o);
  }
  std::cout << table << "\n";

  // Greedy-vs-DP, included here as the algorithmic ablation.
  const auto greedy = core::compute_rank_greedy(setup.design, setup.options, wld);
  std::cout << "algorithmic ablation: greedy assignment gives "
            << util::TextTable::num(greedy.normalized, 4) << " vs DP "
            << util::TextTable::num(base.normalized, 4)
            << " (equal granularity comparisons in bench_fig2)\n";
  return 0;
}
