/// Experiment E11 — the WLD substrate: Davis stochastic wire length
/// distributions (paper reference [4], used for all experiments with Rent
/// p = 0.6). Prints totals, statistics and quantiles for the paper's
/// three design sizes (1M, 4M, 10M gates) and validates the Rent-rule
/// normalization.

#include <iostream>

#include "src/util/table.hpp"
#include "src/wld/coarsen.hpp"
#include "src/wld/davis.hpp"

int main() {
  using namespace iarank;
  std::cout << "E11 / Davis WLD substrate (Rent p = 0.6, k = 4, f.o. = 3)\n\n";

  util::TextTable table("Davis WLDs for the paper's design sizes");
  table.set_header({"gates", "wires", "rent_total", "mean_len", "median",
                    "max_len", "groups", "bunches@10000"});
  for (const std::int64_t gates : {1000000LL, 4000000LL, 10000000LL}) {
    const wld::DavisParams params{gates, 0.6, 4.0, 3.0};
    const wld::DavisModel model(params);
    const wld::Wld w = model.generate();
    const auto stats = w.stats();
    table.add_row({std::to_string(gates), std::to_string(w.total_wires()),
                   util::TextTable::num(params.total_interconnects(), 0),
                   util::TextTable::num(stats.mean_length, 2),
                   util::TextTable::num(stats.median_length, 1),
                   util::TextTable::num(stats.max_length, 0),
                   std::to_string(w.group_count()),
                   std::to_string(wld::bunch_count(w, 10000))});
  }
  std::cout << table << "\n";

  // Cumulative shape of the 1M distribution: the fraction of wires longer
  // than l, which is what the normalized rank axis of Table 4 traverses.
  const wld::Wld w = wld::DavisModel({1000000, 0.6, 4.0, 3.0}).generate();
  util::TextTable shape("1M-gate cumulative shape");
  shape.set_header({"length_pitches", "wires_longer", "fraction"});
  for (const double l : {1.0, 2.0, 3.0, 5.0, 10.0, 30.0, 100.0, 300.0,
                         1000.0}) {
    const auto n = w.count_longer_than(l);
    shape.add_row({util::TextTable::num(l, 0), std::to_string(n),
                   util::TextTable::num(static_cast<double>(n) /
                                            static_cast<double>(w.total_wires()),
                                        4)});
  }
  std::cout << shape << "\n";

  // Region split at sqrt(N): region II (l > sqrt(N)) carries few wires.
  const auto region2 = w.count_longer_than(1000.0);
  std::cout << "Region II (l > sqrt(N)) wires: " << region2 << " ("
            << util::TextTable::num(
                   100.0 * static_cast<double>(region2) /
                       static_cast<double>(w.total_wires()),
                   4)
            << "% of total)\n";
  return 0;
}
