/// Experiment E7 — runtime validation (google-benchmark).
///
/// The paper reports that "no rank computation has runtime greater than
/// 200s" on a dual-Xeon/2GB machine, achieved through WLD bunching
/// (Section 5.1). These microbenchmarks measure the production DP's
/// scaling in bunch count, layer-pair count and gate count, plus the
/// substrates (Davis generation, delay-plan solving, delay-free packing).

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "src/core/dp_rank.hpp"
#include "src/core/engine.hpp"
#include "src/core/free_pack.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/sweep.hpp"
#include "src/delay/model.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/trace.hpp"
#include "src/wld/davis.hpp"
#include "src/wld/coarsen.hpp"

namespace {

using namespace iarank;

/// End-to-end rank computation for the paper baseline, bunch size swept.
void BM_RankBaselineVsBunchSize(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::RankOptions opts = setup.options;
  opts.bunch_size = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_rank(setup.design, opts, wld).rank);
  }
  state.counters["bunches"] = static_cast<double>(
      wld::bunch_count(wld, opts.bunch_size));
}
BENCHMARK(BM_RankBaselineVsBunchSize)
    ->Arg(2000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

/// Rank computation vs gate count (die + WLD + DP end to end).
void BM_RankVsGateCount(benchmark::State& state) {
  const auto gates = static_cast<std::int64_t>(state.range(0));
  const core::PaperSetup setup = core::paper_baseline("130nm", gates);
  const wld::Wld wld = core::default_wld(setup.design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_rank(setup.design, setup.options, wld).rank);
  }
}
BENCHMARK(BM_RankVsGateCount)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(4000000)
    ->Unit(benchmark::kMillisecond);

/// Rank computation vs layer-pair count.
void BM_RankVsLayerPairs(benchmark::State& state) {
  core::PaperSetup setup = core::paper_baseline();
  setup.design.arch.semi_global_pairs = static_cast<int>(state.range(0));
  const wld::Wld wld = core::default_wld(setup.design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_rank(setup.design, setup.options, wld).rank);
  }
}
BENCHMARK(BM_RankVsLayerPairs)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Davis WLD generation.
void BM_DavisGenerate(benchmark::State& state) {
  const wld::DavisParams params{state.range(0), 0.6, 4.0, 3.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wld::DavisModel(params).generate().total_wires());
  }
}
BENCHMARK(BM_DavisGenerate)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(10000000)
    ->Unit(benchmark::kMillisecond);

/// Closed-form repeater insertion (stages_to_meet).
void BM_StagesToMeet(benchmark::State& state) {
  const delay::WireDelayModel model({3e5, 3e-10}, {6.7e3, 1.5e-15, 1.5e-15});
  double l = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.stages_to_meet(l, 1e-9));
    l = l < 1e-2 ? l * 1.01 : 1e-4;
  }
}
BENCHMARK(BM_StagesToMeet);

/// Cold instance construction: a fresh builder per call, every stage a
/// cache miss (the old build_instance cost).
void BM_BuildInstanceCold(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  for (auto _ : state) {
    core::InstanceBuilder builder(setup.design, wld);
    benchmark::DoNotOptimize(builder.build(setup.options).bunch_count());
  }
}
BENCHMARK(BM_BuildInstanceCold)->Unit(benchmark::kMicrosecond);

/// Cached instance construction: stage caches warm, assembly only — the
/// per-point cost a Table 4 sweep pays for an already-seen option set.
void BM_BuildInstanceCached(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::InstanceBuilder builder(setup.design, wld);
  benchmark::DoNotOptimize(builder.build(setup.options).bunch_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(setup.options).bunch_count());
  }
}
BENCHMARK(BM_BuildInstanceCached)->Unit(benchmark::kMicrosecond);

/// A K-sweep point against a warm builder: only the RC-dependent stages
/// (stack + plans) recompute; coarsening and die sizing are hits.
void BM_BuildInstanceKPoint(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::InstanceBuilder builder(setup.design, wld);
  core::RankOptions opts = setup.options;
  benchmark::DoNotOptimize(builder.build(opts).bunch_count());
  double k = 1.8;
  for (auto _ : state) {
    opts.ild_permittivity = k;  // fresh K each iteration: stack+plans miss
    k = k < 3.9 ? k + 1e-4 : 1.8;
    benchmark::DoNotOptimize(builder.build(opts).bunch_count());
  }
}
BENCHMARK(BM_BuildInstanceKPoint)->Unit(benchmark::kMicrosecond);

/// Shared thread-pool dispatch overhead (empty tasks).
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::atomic<std::size_t> sink{0};
  for (auto _ : state) {
    util::ThreadPool::shared().parallel_for(
        n, 0, [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(16)->Arg(256);

/// The paper-scale Table 4 C-column sweep (1M gates, 13 clock points):
/// the uncheckpointed baseline for the journal-overhead comparison below.
void BM_SweepTable4C(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::InstanceBuilder builder(setup.design, wld);
  const std::vector<double> values = core::table4_c_values();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::sweep_parameter(builder, setup.options,
                              core::SweepParameter::kClockFrequency, values, 1)
            .points.size());
  }
}
BENCHMARK(BM_SweepTable4C)->Unit(benchmark::kMillisecond);

/// The same sweep with span tracing enabled, for comparison against
/// BM_SweepTable4C: the gap between the two is the tracing overhead.
/// The observability budget (DESIGN.md Section 9) is < 3% with tracing
/// DISABLED — BM_SweepTable4C itself carries the disabled-path cost,
/// since every span construction still runs the atomic-load gate. This
/// traced variant is informational: it shows the price of capture.
void BM_SweepTable4CTraced(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::InstanceBuilder builder(setup.design, wld);
  const std::vector<double> values = core::table4_c_values();
  for (auto _ : state) {
    util::Trace::enable();  // fresh capture per iteration: bounded memory
    benchmark::DoNotOptimize(
        core::sweep_parameter(builder, setup.options,
                              core::SweepParameter::kClockFrequency, values, 1)
            .points.size());
    util::Trace::disable();
  }
}
BENCHMARK(BM_SweepTable4CTraced)->Unit(benchmark::kMillisecond);

/// The same sweep with a journaled checkpoint (fsync off, the high-rate
/// mode). The journal is deleted each iteration so every point is
/// encoded and appended, never resumed. The "checkpoint_frac" counter is
/// the journal's share of sweep wall time — the budget is < 2%.
void BM_SweepTable4CCheckpointed(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  core::InstanceBuilder builder(setup.design, wld);
  const std::vector<double> values = core::table4_c_values();
  const std::string path =
      (std::filesystem::temp_directory_path() / "iarank_bench_c.journal")
          .string();
  core::SweepRunOptions run;
  run.checkpoint_path = path;
  run.fsync_checkpoint = false;
  double frac = 0.0;
  for (auto _ : state) {
    std::filesystem::remove(path);
    const core::SweepResult sweep = core::sweep_parameter(
        builder, setup.options, core::SweepParameter::kClockFrequency, values,
        run);
    benchmark::DoNotOptimize(sweep.points.size());
    frac = sweep.profile.total_seconds > 0.0
               ? sweep.profile.checkpoint_seconds / sweep.profile.total_seconds
               : 0.0;
  }
  std::filesystem::remove(path);
  state.counters["checkpoint_frac"] = frac;
}
BENCHMARK(BM_SweepTable4CCheckpointed)->Unit(benchmark::kMillisecond);

/// Delay-free packing (greedy_assign / M'') on the full baseline.
void BM_FreePack(benchmark::State& state) {
  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);
  const core::Instance inst =
      core::build_instance(setup.design, setup.options, wld);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::free_pack_feasible(inst, {}));
  }
}
BENCHMARK(BM_FreePack)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
