/// Delay-model validation — grounds the paper's Eq. 2-4 (Otten-Brayton
/// closed form with a = 0.4, b = 0.7) against a backward-Euler transient
/// simulation of the discretized RC ladder, for each layer-pair of the
/// 130 nm baseline architecture. Also cross-checks the closed-form
/// optimal repeater size (Eq. 4) against the simulated optimum.

#include <iostream>

#include "src/delay/ladder.hpp"
#include "src/delay/stack.hpp"
#include "src/tech/node.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;
  std::cout << "Delay-model validation: Eq. 2-4 closed form vs RC-ladder "
               "transient\n\n";

  const auto arch =
      tech::Architecture::build(tech::node_130nm(), tech::ArchitectureSpec{});
  const delay::ElectricalStack stack(
      arch, {tech::copper(), 3.9, 2.0, tech::CapacitanceModel::kSakuraiTamaru});

  util::TextTable table("per layer-pair, unbuffered 2 mm wire at s_opt");
  table.set_header({"pair", "s_opt", "closed_form_ps", "simulated_ps",
                    "ratio", "elmore_ps"});
  for (std::size_t j = 0; j < stack.size(); ++j) {
    const auto& el = stack.pair(j);
    const double l = 2.0 * units::mm;
    const double closed = el.model.delay(l, 1, el.s_opt);
    const double simulated =
        delay::simulate_repeated_wire(el.model, l, 1, el.s_opt, 400);
    delay::LadderSpec spec;
    spec.driver_resistance = el.model.driver().r_o / el.s_opt;
    spec.driver_parasitic = el.model.driver().c_p * el.s_opt;
    spec.load_capacitance = el.model.driver().c_o * el.s_opt;
    spec.resistance_per_m = el.rc.resistance;
    spec.capacitance_per_m = el.rc.capacitance;
    spec.length = l;
    spec.sections = 400;
    table.add_row({arch.pair(j).name, util::TextTable::num(el.s_opt, 1),
                   util::TextTable::num(closed / units::ps, 1),
                   util::TextTable::num(simulated / units::ps, 1),
                   util::TextTable::num(closed / simulated, 3),
                   util::TextTable::num(
                       delay::RcLadder(spec).elmore_delay() / units::ps, 1)});
  }
  std::cout << table << "\n";

  // Repeated-wire validation on the semi-global pair.
  const auto& el = stack.pair(1);
  util::TextTable rep("repeated 5 mm semi-global wire vs stage count");
  rep.set_header({"stages", "closed_form_ps", "simulated_ps", "ratio"});
  for (const std::int64_t stages : {1LL, 2LL, 4LL, 8LL, 16LL}) {
    const double closed = el.model.delay(5.0 * units::mm, stages, el.s_opt);
    const double simulated = delay::simulate_repeated_wire(
        el.model, 5.0 * units::mm, stages, el.s_opt, 300);
    rep.add_row({std::to_string(stages),
                 util::TextTable::num(closed / units::ps, 1),
                 util::TextTable::num(simulated / units::ps, 1),
                 util::TextTable::num(closed / simulated, 3)});
  }
  std::cout << rep << "\n";

  std::cout << "The closed form with the paper's a = 0.4, b = 0.7 tracks the\n"
               "simulated 50% delay within a few percent at these operating\n"
               "points (worst case ~25% at extreme geometries, covered by\n"
               "tests); Elmore (a = 0.5, b = 1.0) is the conservative bound.\n";
  return 0;
}
