/// Experiment E12b — alternative per-connection delay-requirement models
/// (the paper's Section 6: the linear-in-length requirement "becomes
/// unreasonable since the actual delay ... is proportional to the square
/// of length; thus, we are currently studying alternative models").
/// Evaluates the baseline under all four implemented target models.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/delay/target.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E12b / Section 6: alternative target-delay models",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);

  util::TextTable table("rank under each target-delay model d(l)");
  table.set_header({"model", "d(l)", "normalized_rank", "repeaters",
                    "all_assigned"});
  const struct {
    delay::TargetModel model;
    const char* formula;
  } rows[] = {
      {delay::TargetModel::kQuadratic, "(l/lmax)^2 / fc"},
      {delay::TargetModel::kLinear, "(l/lmax) / fc"},
      {delay::TargetModel::kSqrt, "sqrt(l/lmax) / fc"},
      {delay::TargetModel::kUniform, "1 / fc"},
  };
  for (const auto& row : rows) {
    core::RankOptions opts = setup.options;
    opts.target_model = row.model;
    const auto r = core::compute_rank(setup.design, opts, wld);
    table.add_row({delay::to_string(row.model), row.formula,
                   util::TextTable::num(r.normalized, 6),
                   std::to_string(r.repeater_count),
                   r.all_assigned ? "yes" : "no"});
  }
  std::cout << table;
  std::cout << "\nLooser short-wire requirements (sqrt, uniform) admit more\n"
               "of the numerous short wires into the prefix; the quadratic\n"
               "model is the reproduction's default (EXPERIMENTS.md).\n";
  return 0;
}
