/// Experiment E4 — paper Table 4, column R: variation of normalized rank
/// with the maximum repeater area fraction (0.1 to 0.5) for the
/// 130 nm / 1M gate baseline.
///
/// Paper reference series: 0.1 -> 0.1174, 0.2 -> 0.2110, 0.3 -> 0.3037,
/// 0.4 -> 0.3973, 0.5 -> 0.4910 — almost exactly linear in R, the
/// signature of the budget-limited regime (each marginal wire costs the
/// same repeater area).

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sweep.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E4 / Table 4 column R: rank vs repeater area fraction",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, wld,
      core::SweepParameter::kRepeaterFraction, core::table4_r_values(), 4);

  util::TextTable table("rank vs R (130nm, 1M gates)");
  table.set_header({"R", "normalized_rank", "rank_wires", "paper_rank"});
  const double paper[] = {0.117438, 0.210967, 0.303728, 0.397288, 0.491019};
  std::size_t i = 0;
  for (const auto& p : sweep.points) {
    table.add_row({util::TextTable::num(p.value, 1),
                   util::TextTable::num(p.result.normalized, 6),
                   std::to_string(p.result.rank),
                   util::TextTable::num(paper[i++], 6)});
  }
  std::cout << table;

  // Linearity check: fit rank = a*R through least squares and report
  // the residual.
  double sxx = 0.0;
  double sxy = 0.0;
  for (const auto& p : sweep.points) {
    sxx += p.value * p.value;
    sxy += p.value * p.result.normalized;
  }
  const double slope = sxy / sxx;
  double max_resid = 0.0;
  for (const auto& p : sweep.points) {
    max_resid = std::max(max_resid,
                         std::abs(p.result.normalized - slope * p.value));
  }
  std::cout << "Best proportional fit rank ~= " << util::TextTable::num(slope, 3)
            << " * R, max residual " << util::TextTable::num(max_resid, 4)
            << " (paper residual ~0.01)\n";
  return 0;
}
