/// Experiment E1 — paper Table 4, column K: variation of normalized rank
/// with ILD permittivity (3.9 down to 1.8 in steps of 0.1) for the
/// 130 nm / 1M gate baseline design.
///
/// Paper reference series (K, normalized rank): 3.90 -> 0.3973,
/// 3.40 -> 0.4247, 2.90 -> 0.4583, 2.40 -> 0.5016, 1.90 -> 0.5609,
/// 1.80 -> 0.5759. Expected shape: monotone improvement as K drops;
/// our regime reproduces the direction and smoothness with a steeper
/// slope (see EXPERIMENTS.md).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sweep.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E1 / Table 4 column K: rank vs ILD permittivity",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, wld,
      core::SweepParameter::kIldPermittivity, core::table4_k_values(), 4);

  const double budget =
      core::build_instance(setup.design, setup.options, wld).repeater_budget();

  util::TextTable table("rank vs K (130nm, 1M gates)");
  table.set_header({"K", "normalized_rank", "rank_wires", "repeaters",
                    "budget_used_frac"});
  const double base = sweep.points.front().result.normalized;
  for (const auto& p : sweep.points) {
    const auto& r = p.result;
    table.add_row({util::TextTable::num(p.value, 2),
                   util::TextTable::num(r.normalized, 6),
                   std::to_string(r.rank), std::to_string(r.repeater_count),
                   util::TextTable::num(r.repeater_area_used / budget, 3)});
  }
  std::cout << table;
  std::cout << "Improvement K 3.9 -> 1.8: "
            << util::TextTable::num(
                   sweep.points.back().result.normalized / base, 3)
            << "x (paper: 1.45x)\n";
  return 0;
}
