/// \file bench_common.hpp
/// \brief Shared helpers for the table-reproduction bench binaries.

#pragma once

#include <iostream>
#include <string>

#include "src/core/engine.hpp"
#include "src/core/paper_setup.hpp"
#include "src/util/table.hpp"

namespace iarank::bench {

/// Prints a standard header identifying the experiment and the setup.
inline void print_header(const std::string& experiment,
                         const core::PaperSetup& setup) {
  std::cout << "=====================================================\n";
  std::cout << experiment << "\n";
  std::cout << "Design: " << setup.design.node.name << ", "
            << setup.design.gate_count << " gates, "
            << setup.design.arch.global_pairs << "G+"
            << setup.design.arch.semi_global_pairs << "S+"
            << setup.design.arch.local_pairs << "L layer-pairs\n";
  std::cout << "Baseline: K=" << setup.options.ild_permittivity
            << " M=" << setup.options.miller_factor
            << " C=" << setup.options.clock_frequency / 1e6 << "MHz"
            << " R=" << setup.options.repeater_fraction
            << " bunch=" << setup.options.bunch_size << "\n";
  std::cout << "=====================================================\n";
}

}  // namespace iarank::bench
