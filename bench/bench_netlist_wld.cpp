/// WLD substrate validation — closes the loop behind the paper's use of
/// the Davis a-priori distribution: a synthetic Rent-parameterized
/// netlist (p = 0.6, like the paper's WLDs) is placed hierarchically and
/// its *extracted* wire lengths are compared, band by band, against the
/// Davis closed form; both are then pushed through the rank engine.

#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/netlist/generate.hpp"
#include "src/netlist/place.hpp"
#include "src/wld/davis.hpp"

int main() {
  using namespace iarank;
  std::cout << "Extracted (placed netlist) WLD vs Davis closed form\n\n";

  netlist::GeneratorParams params;
  params.levels = 9;  // 262144 gates
  params.rent_p = 0.6;
  params.rent_k = 4.0;
  const auto nl = netlist::generate_netlist(params);
  const auto extracted = netlist::extract_wld(nl);
  const wld::DavisModel davis_model({params.gate_count(), 0.6, 4.0, 3.0});
  const auto davis = davis_model.generate();

  std::cout << "netlist: " << nl.gate_count() << " gates, " << nl.net_count()
            << " nets (avg degree "
            << util::TextTable::num(nl.average_degree(), 2) << ")\n";

  // Rent characteristic of the generated netlist.
  const auto points = netlist::rent_characteristic(nl);
  util::TextTable rent("measured Rent characteristic (T = k n^p)");
  rent.set_header({"block_gates", "avg_terminals", "k*n^0.6"});
  for (const auto& pt : points) {
    rent.add_row({std::to_string(pt.block_gates),
                  util::TextTable::num(pt.avg_terminals, 1),
                  util::TextTable::num(
                      4.0 * std::pow(static_cast<double>(pt.block_gates), 0.6),
                      1)});
  }
  std::cout << rent;
  auto fit_points = points;
  if (fit_points.size() > 2) fit_points.resize(fit_points.size() - 2);
  const auto fit = netlist::fit_rent(fit_points);
  std::cout << "fit below region-II rolloff: p = "
            << util::TextTable::num(fit.exponent, 3)
            << " (target 0.6), k = " << util::TextTable::num(fit.coefficient, 2)
            << " (target 4)\n\n";

  // Length-band comparison (fractions of wires).
  util::TextTable bands("wire-length bands (fraction of wires)");
  bands.set_header({"band_pitches", "extracted", "davis"});
  const double band_edges[] = {1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0, 1e9};
  for (std::size_t i = 0; i + 1 < std::size(band_edges); ++i) {
    const auto ex = extracted.count_longer_than(band_edges[i]) -
                    extracted.count_longer_than(band_edges[i + 1]);
    const auto dv = davis.count_longer_than(band_edges[i]) -
                    davis.count_longer_than(band_edges[i + 1]);
    bands.add_row({util::TextTable::num(band_edges[i], 0) + "+",
                   util::TextTable::num(
                       static_cast<double>(ex) /
                           static_cast<double>(extracted.total_wires()),
                       4),
                   util::TextTable::num(static_cast<double>(dv) /
                                            static_cast<double>(davis.total_wires()),
                                        4)});
  }
  std::cout << bands << "\n";

  // End-to-end: rank under both WLDs, with the regime rescaled for the
  // 262k-gate die (the calibration is gate-count dependent; see
  // paper_setup.hpp — these knobs keep N * die_scale^2 and the
  // budget/demand ratio at their 1M-gate values).
  const core::PaperSetup setup = core::paper_baseline(
      "130nm", params.gate_count(), core::scaled_regime(params.gate_count()));
  const auto r_davis = core::compute_rank(setup.design, setup.options, davis);
  const auto r_extracted =
      core::compute_rank(setup.design, setup.options, extracted);
  util::TextTable ranks("rank under each WLD (130nm paper regime)");
  ranks.set_header({"wld_source", "wires", "normalized_rank"});
  ranks.add_row({"Davis closed form", std::to_string(davis.total_wires()),
                 util::TextTable::num(r_davis.normalized, 4)});
  ranks.add_row({"extracted from placed netlist",
                 std::to_string(extracted.total_wires()),
                 util::TextTable::num(r_extracted.normalized, 4)});
  std::cout << ranks;
  std::cout << "\n(Extracted nets are multi-pin HPWL and exclude primary\n"
               "I/O, so totals differ from the point-to-point Davis count;\n"
               "shapes and the resulting ranks are the comparison.)\n";
  return 0;
}
