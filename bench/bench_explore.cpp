/// Exploration harness benchmarks (google-benchmark).
///
/// What the crash-tolerance machinery costs: the clean in-process grid
/// sets the floor; the worker-mode run adds fork + leased-queue + journal
/// + merge on top of the identical evaluation work; the scan and lease
/// benches price the two per-record/per-chunk primitives the coordinator
/// and workers pay during a run.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "src/core/explore.hpp"
#include "src/util/config.hpp"
#include "src/util/journal.hpp"
#include "src/util/lease_queue.hpp"

namespace {

using namespace iarank;

constexpr const char* kGridText =
    "gates = 20000\n"
    "bunch_size = 2000\n"
    "explore.K = 2.2:3.9:6\n"
    "explore.M = 1.0:2.0:5\n"
    "explore.R = 0.25:0.45:8\n";  // 240 points

const core::ExploreSpec& bench_spec() {
  static const core::ExploreSpec spec =
      core::ExploreSpec::parse(util::Config::parse(kGridText));
  return spec;
}

std::string fresh_dir(const std::string& stem) {
  static int counter = 0;
  const std::filesystem::path dir = std::filesystem::temp_directory_path() /
                                    (stem + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// Floor: the whole grid evaluated in process, no queue, no forks.
void BM_ExploreCleanGrid(benchmark::State& state) {
  for (auto _ : state) {
    core::ExploreOptions options;
    options.dir = fresh_dir("iarank_bench_explore_clean");
    options.jobs = static_cast<unsigned>(state.range(0));
    const core::ExploreResult result = core::run_explore(bench_spec(), options);
    benchmark::DoNotOptimize(result.ok);
    std::filesystem::remove_all(options.dir);
  }
  state.counters["points"] =
      benchmark::Counter(static_cast<double>(bench_spec().total_points() *
                                             state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreCleanGrid)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// The same grid through forked workers: fork + flock'd lease traffic +
/// per-record journaling + merge audit, on top of the identical solves.
void BM_ExploreWorkerGrid(benchmark::State& state) {
  for (auto _ : state) {
    core::ExploreOptions options;
    options.dir = fresh_dir("iarank_bench_explore_workers");
    options.workers = static_cast<int>(state.range(0));
    options.chunk_points = 16;
    const core::ExploreResult result = core::run_explore(bench_spec(), options);
    benchmark::DoNotOptimize(result.ok);
    std::filesystem::remove_all(options.dir);
  }
  state.counters["points"] =
      benchmark::Counter(static_cast<double>(bench_spec().total_points() *
                                             state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExploreWorkerGrid)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Merge-side read of one worker journal: what every coordinator merge
/// and suspect-scan pays per journal file.
void BM_JournalScan(benchmark::State& state) {
  const std::string dir = fresh_dir("iarank_bench_explore_scan");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/scan.journal";
  const std::int64_t records = state.range(0);
  {
    util::CheckpointJournal journal(path, 42, {false});
    const std::string payload(120, 'x');  // a typical encoded point
    for (std::int64_t i = 0; i < records; ++i) journal.append(i, payload);
  }
  for (auto _ : state) {
    const util::CheckpointJournal::Scan scan =
        util::CheckpointJournal::scan(path, 42);
    benchmark::DoNotOptimize(scan.entries.size());
  }
  state.counters["records"] = benchmark::Counter(
      static_cast<double>(records * state.iterations()),
      benchmark::Counter::kIsRate);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournalScan)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

/// One full lease lifecycle (enqueue, claim, renew, complete), all under
/// the queue's flock: the fixed coordination cost per chunk.
void BM_LeaseLifecycle(benchmark::State& state) {
  const std::string dir = fresh_dir("iarank_bench_explore_lease");
  util::LeaseQueue queue(dir, {});
  std::int64_t lo = 0;
  for (auto _ : state) {
    queue.enqueue(lo, lo + 64, 0);
    const auto chunk = queue.claim("bench");
    (void)queue.renew(*chunk, "bench", lo + 32);
    queue.complete(*chunk, "bench");
    lo += 64;
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_LeaseLifecycle)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
