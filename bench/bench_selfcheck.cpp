/// \file bench_selfcheck.cpp
/// \brief Differential self-check throughput over the shared thread pool.
///
/// The selfcheck harness is designed to be cheap enough to run thousands
/// of seeds in CI. This bench measures scenarios/second as the pool fans
/// out, and doubles as a longer randomized soak: any contract mismatch
/// aborts the run with the failing seeds.

#include <chrono>
#include <iostream>
#include <string>

#include "src/core/selfcheck.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

int main() {
  using namespace iarank;
  constexpr std::int64_t kScenarios = 400;

  std::cout << "differential selfcheck throughput (" << kScenarios
            << " scenarios per run, seeds 0.." << kScenarios - 1 << ")\n\n";

  util::TextTable table("selfcheck scaling over the thread pool");
  table.set_header(
      {"workers", "seconds", "scenarios/s", "oracle_runs", "reference_runs"});

  for (const unsigned workers : {0u, 1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(workers);
    core::SelfCheckOptions options;
    options.shrink = true;

    const auto start = std::chrono::steady_clock::now();
    const core::SelfCheckReport report =
        core::run_selfcheck(kScenarios, options, &pool);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (!report.ok()) {
      std::cout << "MISMATCHES: " << report.failures.size() << "\n";
      for (const core::SelfCheckFailure& f : report.failures) {
        std::cout << "seed " << f.seed << ": " << f.mismatch << "\n"
                  << f.shrunk.describe();
      }
      return 1;
    }

    table.add_row({std::to_string(workers), util::TextTable::num(seconds, 3),
                   util::TextTable::num(
                       static_cast<double>(kScenarios) / seconds, 1),
                   std::to_string(report.brute_checked),
                   std::to_string(report.reference_checked)});
  }
  std::cout << table << "\n";
  std::cout << "The harness is embarrassingly parallel (one scenario per\n"
               "task, results written by index); scaling is bounded by the\n"
               "heaviest physical scenarios, whose build_instance dominates\n"
               "the engine runs themselves.\n";
  return 0;
}
