/// Experiment E2 — paper Table 4, column M: variation of normalized rank
/// with the Miller coupling factor (2.00 down to 1.00 in steps of 0.05)
/// for the 130 nm / 1M gate baseline.
///
/// Paper reference series (M, normalized rank): 2.00 -> 0.3973,
/// 1.75 -> 0.4238, 1.50 -> 0.4566, 1.25 -> 0.4981, 1.00 -> 0.5538.
/// Expected shape: monotone improvement as M drops (M = 1 corresponds to
/// double-sided shielding, paper footnote 8).

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sweep.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E2 / Table 4 column M: rank vs Miller coupling factor",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const auto sweep =
      core::sweep_parameter(setup.design, setup.options, wld,
                            core::SweepParameter::kMillerFactor,
                            core::table4_m_values(), 4);

  util::TextTable table("rank vs M (130nm, 1M gates)");
  table.set_header({"M", "normalized_rank", "rank_wires", "repeaters"});
  for (const auto& p : sweep.points) {
    table.add_row({util::TextTable::num(p.value, 2),
                   util::TextTable::num(p.result.normalized, 6),
                   std::to_string(p.result.rank),
                   std::to_string(p.result.repeater_count)});
  }
  std::cout << table;
  std::cout << "Improvement M 2.0 -> 1.0: "
            << util::TextTable::num(sweep.points.back().result.normalized /
                                        sweep.points.front().result.normalized,
                                    3)
            << "x (paper: 1.39x)\n";
  return 0;
}
