/// Experiment E9 — cross-node baselines. The paper (Section 5.2) ran
/// baseline designs of 4M gates at 90 nm, 1M gates at 130 nm and 1M gates
/// at 180 nm (Table 2 parameters, Table 3 geometries) but printed only
/// the 130 nm / 1M case. This bench reproduces the full matrix, keeping
/// the calibrated regime fixed so that node-to-node geometry differences
/// (Table 3) drive the comparison.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"

int main() {
  using namespace iarank;
  std::cout << "E9 / cross-node baseline ranks (Table 2 baselines)\n\n";

  struct Case {
    const char* node;
    std::int64_t gates;
  };
  const Case cases[] = {
      {"180nm", 1000000}, {"130nm", 1000000}, {"130nm", 4000000},
      {"90nm", 1000000},  {"90nm", 4000000},
  };

  util::TextTable table("baseline rank by node and gate count");
  table.set_header({"node", "gates", "wires", "normalized_rank", "rank_wires",
                    "repeaters", "all_assigned"});
  for (const Case& c : cases) {
    const core::PaperSetup setup = core::paper_baseline(c.node, c.gates);
    const wld::Wld wld = core::default_wld(setup.design);
    const auto r = core::compute_rank(setup.design, setup.options, wld);
    table.add_row({c.node, std::to_string(c.gates),
                   std::to_string(wld.total_wires()),
                   util::TextTable::num(r.normalized, 6),
                   std::to_string(r.rank), std::to_string(r.repeater_count),
                   r.all_assigned ? "yes" : "no"});
  }
  std::cout << table;
  std::cout << "\nExpected shape: finer nodes have higher wire RC per length\n"
               "(Table 3 geometries shrink faster than the dielectric), so\n"
               "at a fixed regime the same budget buys fewer delay-met wires\n"
               "as the node shrinks or the design grows.\n";
  return 0;
}
