/// Annealing co-optimization — extends experiment E12a with the geometry
/// dimension: simulated annealing over (layer allocation, ILD aspect,
/// per-tier width/spacing multipliers) under the rank objective, compared
/// against the exhaustive allocation-only search.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/anneal.hpp"
#include "src/core/optimizer.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header(
      "E12a+ / annealing co-optimization of architecture and geometry",
      setup);
  const wld::Wld wld = core::default_wld(setup.design);

  const auto baseline = core::compute_rank(setup.design, setup.options, wld);
  std::cout << "Table 2 baseline rank: "
            << util::TextTable::num(baseline.normalized, 4) << "\n\n";

  // Allocation-only exhaustive search (same bounds as the annealer).
  core::OptimizerOptions grid;
  grid.min_total_pairs = 2;
  grid.max_total_pairs = 4;
  grid.max_global_pairs = 2;
  grid.max_semi_global_pairs = 2;
  grid.max_local_pairs = 2;
  const auto exhaustive = core::optimize_architecture(
      setup.design.node, setup.design.gate_count, setup.options, wld, grid);

  // Annealer with geometry moves enabled.
  core::AnnealOptions anneal;
  anneal.iterations = 120;
  anneal.max_total_pairs = 4;
  anneal.max_pairs_per_tier = 2;
  anneal.seed = 2003;
  const auto annealed = core::anneal_architecture(
      setup.design.node, setup.design.gate_count, setup.options, wld, anneal);

  util::TextTable table("optimization comparison");
  table.set_header({"method", "evaluations", "best_rank", "architecture"});
  table.add_row({"Table 2 baseline", "1",
                 util::TextTable::num(baseline.normalized, 4), "1G+2S+1L"});
  table.add_row({"exhaustive (allocation only)",
                 std::to_string(exhaustive.evaluated.size()),
                 util::TextTable::num(exhaustive.best.result.normalized, 4),
                 std::to_string(exhaustive.best.spec.global_pairs) + "G+" +
                     std::to_string(exhaustive.best.spec.semi_global_pairs) +
                     "S+" + std::to_string(exhaustive.best.spec.local_pairs) +
                     "L"});
  table.add_row(
      {"annealing (+geometry)", std::to_string(annealed.evaluations),
       util::TextTable::num(annealed.best_result.normalized, 4),
       std::to_string(annealed.best.arch.global_pairs) + "G+" +
           std::to_string(annealed.best.arch.semi_global_pairs) + "S+" +
           std::to_string(annealed.best.arch.local_pairs) + "L"});
  std::cout << table << "\n";

  const auto& t = annealed.best.tuning;
  util::TextTable geo("annealed geometry multipliers (width x spacing)");
  geo.set_header({"tier", "width", "spacing"});
  geo.add_row({"global", util::TextTable::num(t.global.width, 2),
               util::TextTable::num(t.global.spacing, 2)});
  geo.add_row({"semi-global", util::TextTable::num(t.semi_global.width, 2),
               util::TextTable::num(t.semi_global.spacing, 2)});
  geo.add_row({"local", util::TextTable::num(t.local.width, 2),
               util::TextTable::num(t.local.spacing, 2)});
  std::cout << geo;
  return 0;
}
