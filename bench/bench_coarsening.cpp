/// Experiment E8 — paper Section 5.1: WLD coarsening. Measures the
/// accuracy/runtime trade of bunching (and binning, footnote 7) on the
/// 130 nm / 1M gate baseline, and verifies the paper's bound that the
/// rank error from bunching is at most the largest bunch size.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/wld/coarsen.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E8 / Section 5.1: coarsening accuracy vs runtime",
                      setup);
  const wld::Wld wld = core::default_wld(setup.design);

  auto timed_rank = [&](const core::RankOptions& opts, double* ms) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = core::compute_rank(setup.design, opts, wld);
    const auto t1 = std::chrono::steady_clock::now();
    *ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
  };

  // Reference: the finest practical granularity.
  core::RankOptions fine = setup.options;
  fine.bunch_size = 500;
  fine.refine_boundary = false;
  double fine_ms = 0.0;
  const auto ref = timed_rank(fine, &fine_ms);

  // Error bound: the paper states the prefix-rounding loss is at most one
  // bunch; rounding the per-pair chunk boundaries can cost up to one more
  // bunch per layer-pair, so we check against bunch_size * pair_count
  // (plus the reference run's own granularity).
  const auto pairs = static_cast<std::int64_t>(
      core::build_instance(setup.design, fine, wld).pair_count());

  util::TextTable table("bunching sweep (no boundary refinement)");
  table.set_header({"bunch_size", "bunches", "rank", "error_vs_fine",
                    "bound_ok", "runtime_ms"});
  table.add_row({"500 (ref)", std::to_string(wld::bunch_count(wld, 500)),
                 std::to_string(ref.rank), "0", "yes",
                 util::TextTable::num(fine_ms, 1)});
  for (const std::int64_t bs : {2000LL, 10000LL, 50000LL, 200000LL}) {
    core::RankOptions opts = fine;
    opts.bunch_size = bs;
    double ms = 0.0;
    const auto r = timed_rank(opts, &ms);
    const std::int64_t err = std::llabs(r.rank - ref.rank);
    const std::int64_t bound = bs * pairs + 500 * pairs;
    table.add_row({std::to_string(bs),
                   std::to_string(wld::bunch_count(wld, bs)),
                   std::to_string(r.rank), std::to_string(err),
                   err <= bound ? "yes" : "NO", util::TextTable::num(ms, 1)});
  }
  std::cout << table << "\n";

  // Boundary refinement (our extension) recovers most of the error.
  util::TextTable refine_table("boundary refinement at bunch 50000");
  refine_table.set_header({"refinement", "rank", "error_vs_fine"});
  for (const bool refine : {false, true}) {
    core::RankOptions opts = fine;
    opts.bunch_size = 50000;
    opts.refine_boundary = refine;
    double ms = 0.0;
    const auto r = timed_rank(opts, &ms);
    refine_table.add_row({refine ? "on" : "off", std::to_string(r.rank),
                          std::to_string(std::llabs(r.rank - ref.rank))});
  }
  std::cout << refine_table << "\n";

  // Binning (paper footnote 7) on top of bunching.
  util::TextTable bin_table("binning (window in gate pitches) + bunch 10000");
  bin_table.set_header({"bin_window", "bunches", "rank", "error_vs_fine",
                        "runtime_ms"});
  for (const double window : {0.0, 1.0, 3.0, 10.0}) {
    core::RankOptions opts = fine;
    opts.bunch_size = 10000;
    opts.bin_window = window;
    double ms = 0.0;
    const auto r = timed_rank(opts, &ms);
    const auto binned =
        window > 0.0 ? wld::bin_absolute(wld, window) : wld;
    bin_table.add_row({util::TextTable::num(window, 1),
                       std::to_string(wld::bunch_count(binned, 10000)),
                       std::to_string(r.rank),
                       std::to_string(std::llabs(r.rank - ref.rank)),
                       util::TextTable::num(ms, 1)});
  }
  std::cout << bin_table;
  return 0;
}
