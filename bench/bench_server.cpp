/// Experiment S1 — rank_server throughput and latency: an in-process
/// daemon on a Unix socket, hammered by concurrent clients issuing warm
/// `rank` requests (four ILD-permittivity variants, so every request
/// after warm-up is four builder-stage cache hits plus the DP; with v2
/// batching, concurrent duplicates of a variant coalesce onto one DP).
///
/// Reports req/s and nearest-rank p50/p99/max latency, then audits the
/// books on both sides of the wire: every framed request the bench sent
/// (warm-up + timed load + the final metrics scrape) is counted client-
/// side, and the run fails (exit nonzero) unless
///
///   client_total == requests_total == requests_ok + requests_failed
///   client_failures == requests_failed
///
/// HTTP traffic is booked separately (iarank_server_http_requests_total)
/// and must match the probe count. Snapshots everything to
/// BENCH_server.json (the artifact CI's server-smoke job uploads; the
/// checked-in copy records the numbers DESIGN.md Section 11 quotes).
///
/// usage: bench_server [--seconds S] [--clients N] [--workers N]
///                     [--queue-cap N] [--out FILE]

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/config_run.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/server/service.hpp"
#include "src/util/atomic_file.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/strings.hpp"

namespace {

using namespace iarank;

struct BenchArgs {
  double seconds = 3.0;
  unsigned clients = 8;
  unsigned workers = 4;
  std::size_t queue_cap = 64;
  std::string out = "BENCH_server.json";
};

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int a = 1; a < argc; ++a) {
    const std::string flag = argv[a];
    const auto value = [&]() -> std::string {
      if (a + 1 >= argc) {
        throw util::Error("bench_server: " + flag + " needs a value");
      }
      return argv[++a];
    };
    if (flag == "--seconds") {
      args.seconds = util::parse_double(value());
    } else if (flag == "--clients") {
      args.clients = static_cast<unsigned>(util::parse_int(value()));
    } else if (flag == "--workers") {
      args.workers = static_cast<unsigned>(util::parse_int(value()));
    } else if (flag == "--queue-cap") {
      args.queue_cap = static_cast<std::size_t>(util::parse_int(value()));
    } else if (flag == "--out") {
      args.out = value();
    } else {
      throw util::Error("bench_server: unknown flag '" + flag + "'");
    }
  }
  return args;
}

/// Nearest-rank percentile of an already sorted sample vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One raw HTTP GET against the daemon's HTTP listener; returns the full
/// response (the server closes after each response).
std::string http_get(const server::Address& address,
                     const std::string& target) {
  const int fd = server::connect_to(address);
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: b\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ::ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[8192];
  while (true) {
    const ::ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) try {
  const BenchArgs args = parse_args(argc, argv);

  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("S1: rank_server throughput (warm rank requests)",
                      setup);
  const wld::Wld wld = core::default_wld(setup.design);

  core::RunSpec spec;
  spec.design = setup.design;
  spec.options = setup.options;
  server::RankService service(spec, wld);

  char socket_dir[] = "/tmp/iarank_bench_XXXXXX";
  if (::mkdtemp(socket_dir) == nullptr) {
    std::cerr << "bench_server: mkdtemp failed\n";
    return 1;
  }
  server::ServerOptions server_options;
  server_options.address.kind = server::Address::Kind::kUnix;
  server_options.address.path = std::string(socket_dir) + "/rank.sock";
  server_options.workers = args.workers;
  server_options.queue_capacity = args.queue_cap;
  server_options.http_port = 0;  // probe the scrape path below
  server::Server daemon(service, server_options);

  // Client-side books: every framed request this process sends is
  // counted in exactly one of these three, so the sum must equal the
  // server's requests_total at the final scrape.
  std::int64_t warmup_requests = 0;
  std::int64_t scrape_requests = 0;
  std::int64_t failures = 0;  // error responses, any phase

  // The request mix: four K variants. After the warm-up pass below, every
  // variant is resident in the builder's stage caches, so the steady state
  // measures serving cost (framing, queueing, cached build, DP), not
  // instance construction.
  std::vector<std::string> payloads;
  for (const char* k : {"3.9", "3.3", "2.7", "2.1"}) {
    util::Json overrides;
    overrides["ild_permittivity"] = std::string(k);
    util::Json request;
    request["type"] = "rank";
    request["overrides"] = std::move(overrides);
    payloads.push_back(request.dump());
  }
  {
    const int fd = server::connect_to(daemon.address());
    for (const std::string& payload : payloads) {
      const std::string response = server::round_trip(fd, payload);
      ++warmup_requests;
      if (response.find("\"ok\":true") == std::string::npos) ++failures;
    }
    ::close(fd);
  }

  std::mutex merge_mutex;
  std::vector<double> latencies;  // seconds

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(args.seconds);
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(args.clients);
  for (unsigned c = 0; c < args.clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> local;
      std::int64_t local_failures = 0;
      const int fd = server::connect_to(daemon.address());
      std::size_t i = c;  // stagger the variant each client starts with
      while (std::chrono::steady_clock::now() < deadline) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string response =
            server::round_trip(fd, payloads[i++ % payloads.size()]);
        const auto t1 = std::chrono::steady_clock::now();
        local.push_back(std::chrono::duration<double>(t1 - t0).count());
        if (response.find("\"ok\":true") == std::string::npos) {
          ++local_failures;
        }
      }
      ::close(fd);
      const std::scoped_lock lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
      failures += local_failures;
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();

  // HTTP scrapes (booked separately from the framed protocol), then the
  // final framed metrics scrape, then stop. /debug/slow is probed along
  // with /metrics so the bench also guards the debug surface's framing.
  std::int64_t http_probes = 0;
  const std::string http_response = http_get(daemon.http_address(), "/metrics");
  ++http_probes;
  const bool http_ok =
      http_response.rfind("HTTP/1.1 200 OK\r\n", 0) == 0 &&
      http_response.find("iarank_server_requests_total") != std::string::npos;
  const std::string slow_response =
      http_get(daemon.http_address(), "/debug/slow");
  ++http_probes;
  bool debug_slow_ok = slow_response.rfind("HTTP/1.1 200 OK\r\n", 0) == 0;
  if (debug_slow_ok) {
    const auto body_at = slow_response.find("\r\n\r\n");
    try {
      debug_slow_ok =
          body_at != std::string::npos &&
          util::Json::parse(slow_response.substr(body_at + 4))
              .contains("requests");
    } catch (const std::exception&) {
      debug_slow_ok = false;
    }
  }

  std::string metrics_body;
  {
    const int fd = server::connect_to(daemon.address());
    const util::Json response = util::Json::parse(
        server::round_trip(fd, std::string("{\"type\":\"metrics\"}")));
    ::close(fd);
    ++scrape_requests;  // counts itself server-side before rendering
    metrics_body = response.at("body").as_string();
  }
  daemon.stop();
  ::rmdir(socket_dir);

  // The daemon is in-process, so queue-wait quantiles come straight from
  // its histogram (registering the same name returns the live instance).
  util::Histogram& queue_wait = util::MetricsRegistry::histogram(
      "iarank_server_queue_wait_seconds", util::Histogram::duration_bounds());
  const double queue_wait_p50_ms = queue_wait.quantile(0.50) * 1e3;
  const double queue_wait_p99_ms = queue_wait.quantile(0.99) * 1e3;

  const auto metric_value = [&](const std::string& name) -> std::int64_t {
    const auto pos = metrics_body.find("\n" + name + " ");
    if (pos == std::string::npos) return -1;
    const auto start = pos + 1 + name.size() + 1;
    const auto end = metrics_body.find('\n', start);
    return static_cast<std::int64_t>(
        util::parse_double(metrics_body.substr(start, end - start)));
  };
  const std::int64_t requests_total =
      metric_value("iarank_server_requests_total");
  const std::int64_t requests_ok =
      metric_value("iarank_server_requests_ok_total");
  const std::int64_t requests_failed =
      metric_value("iarank_server_requests_failed_total");
  const std::int64_t overloaded =
      metric_value("iarank_server_overloaded_total");
  const std::int64_t batched =
      metric_value("iarank_server_batched_requests_total");
  const std::int64_t batches = metric_value("iarank_server_batches_total");
  const std::int64_t http_requests =
      metric_value("iarank_server_http_requests_total");

  std::sort(latencies.begin(), latencies.end());
  const double count = static_cast<double>(latencies.size());
  const double req_per_s = elapsed > 0.0 ? count / elapsed : 0.0;
  const double p50_ms = percentile(latencies, 0.50) * 1e3;
  const double p99_ms = percentile(latencies, 0.99) * 1e3;
  const double max_ms = latencies.empty() ? 0.0 : latencies.back() * 1e3;
  const std::int64_t client_total = warmup_requests +
                                    static_cast<std::int64_t>(latencies.size()) +
                                    scrape_requests;

  util::TextTable table("server load (" + std::to_string(args.clients) +
                        " clients, " + std::to_string(args.workers) +
                        " workers)");
  table.set_header({"metric", "value"});
  table.add_row({"requests", std::to_string(latencies.size())});
  table.add_row({"req/s", util::TextTable::num(req_per_s, 1)});
  table.add_row({"p50 ms", util::TextTable::num(p50_ms, 3)});
  table.add_row({"p99 ms", util::TextTable::num(p99_ms, 3)});
  table.add_row({"max ms", util::TextTable::num(max_ms, 3)});
  table.add_row({"error responses", std::to_string(failures)});
  table.add_row({"overloaded", std::to_string(overloaded)});
  table.add_row({"batched requests", std::to_string(batched)});
  table.add_row({"queue wait p50 ms", util::TextTable::num(queue_wait_p50_ms, 3)});
  table.add_row({"queue wait p99 ms", util::TextTable::num(queue_wait_p99_ms, 3)});
  std::cout << table;

  // The audit. Any line failing here is a bookkeeping bug, not noise.
  std::vector<std::string> violations;
  if (requests_total < 0 || requests_total != requests_ok + requests_failed) {
    violations.push_back("server books: requests_total (" +
                         std::to_string(requests_total) + ") != ok (" +
                         std::to_string(requests_ok) + ") + failed (" +
                         std::to_string(requests_failed) + ")");
  }
  if (client_total != requests_total) {
    violations.push_back(
        "wire books: client sent " + std::to_string(client_total) +
        " framed requests (warmup " + std::to_string(warmup_requests) +
        " + load " + std::to_string(latencies.size()) + " + scrape " +
        std::to_string(scrape_requests) + ") but server counted " +
        std::to_string(requests_total));
  }
  if (failures != requests_failed) {
    violations.push_back("failure books: client saw " +
                         std::to_string(failures) +
                         " error responses, server counted " +
                         std::to_string(requests_failed));
  }
  if (!http_ok) {
    violations.push_back("http probe: GET /metrics did not return a 200 "
                         "Prometheus exposition");
  }
  if (!debug_slow_ok) {
    violations.push_back("http probe: GET /debug/slow did not return a 200 "
                         "JSON object with a 'requests' key");
  }
  if (http_requests != http_probes) {
    violations.push_back("http books: sent " + std::to_string(http_probes) +
                         " HTTP requests, server counted " +
                         std::to_string(http_requests));
  }
  std::cout << "books: client=" << client_total << " total=" << requests_total
            << " ok=" << requests_ok << " failed=" << requests_failed
            << " http=" << http_requests
            << (violations.empty() ? " (balanced)" : " (INCONSISTENT)")
            << "\n";
  for (const std::string& v : violations) {
    std::cout << "VIOLATION: " << v << "\n";
  }

  util::Json snapshot;
  snapshot["bench"] = "bench_server";
  snapshot["seconds"] = elapsed;
  snapshot["clients"] = static_cast<std::int64_t>(args.clients);
  snapshot["workers"] = static_cast<std::int64_t>(args.workers);
  snapshot["queue_capacity"] = static_cast<std::int64_t>(args.queue_cap);
  snapshot["requests"] = static_cast<std::int64_t>(latencies.size());
  snapshot["warmup_requests"] = warmup_requests;
  snapshot["scrape_requests"] = scrape_requests;
  snapshot["client_total"] = client_total;
  snapshot["req_per_s"] = req_per_s;
  snapshot["p50_ms"] = p50_ms;
  snapshot["p99_ms"] = p99_ms;
  snapshot["max_ms"] = max_ms;
  snapshot["queue_wait_p50_ms"] = queue_wait_p50_ms;
  snapshot["queue_wait_p99_ms"] = queue_wait_p99_ms;
  snapshot["error_responses"] = failures;
  snapshot["requests_total"] = requests_total;
  snapshot["requests_ok"] = requests_ok;
  snapshot["requests_failed"] = requests_failed;
  snapshot["overloaded"] = overloaded;
  snapshot["batched_requests"] = batched;
  snapshot["batches"] = batches;
  snapshot["http_requests"] = http_requests;
  snapshot["books_balanced"] = violations.empty();
  util::atomic_write_file(args.out, snapshot.dump());
  std::cout << "wrote " << args.out << "\n";

  return violations.empty() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "bench_server: " << e.what() << "\n";
  return 1;
}
