/// \file bench_dp_kernel.cpp
/// \brief Microbenchmarks of the DP hot path at paper scale: the full
///        solve (cold / warm / pruning off), the delay-free packer it
///        leans on, and the per-iteration counter profile. Run by
///        tests/bench_snapshot.sh to produce BENCH_dp.json.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/core/dp_rank.hpp"
#include "src/core/engine.hpp"
#include "src/core/free_pack.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/paper_setup.hpp"
#include "src/core/sweep.hpp"
#include "src/util/alloc_count.hpp"
#include "src/wld/wld.hpp"

namespace {

using namespace iarank;

/// The Table 4 baseline instance (130 nm, 1M gates), built once.
const core::Instance& baseline_instance() {
  static const core::Instance inst = [] {
    const core::PaperSetup setup = core::paper_baseline();
    const wld::Wld wld = core::default_wld(setup.design);
    return core::InstanceBuilder(setup.design, wld).build(setup.options);
  }();
  return inst;
}

/// Full exact solve, cold. Counters expose where the time goes: the
/// forward sweep line's share, states committed, and how few candidates
/// the best-first search actually verifies.
void BM_DpRankCold(benchmark::State& state) {
  const core::Instance& inst = baseline_instance();
  core::DpOptions opt;
  opt.build_trace = false;
  core::RankResult last;
  for (auto _ : state) {
    last = core::dp_rank(inst, opt);
    benchmark::DoNotOptimize(last.rank);
  }
  state.counters["arena_nodes"] = static_cast<double>(last.dp.arena_nodes);
  state.counters["max_frontier"] = static_cast<double>(last.dp.max_frontier);
  state.counters["heap_pops"] = static_cast<double>(last.dp.heap_pops);
  state.counters["verify_calls"] = static_cast<double>(last.dp.verify_calls);
  state.counters["arena_bytes"] = static_cast<double>(last.dp.arena_bytes);
  state.counters["forward_frac"] =
      last.dp.seconds > 0.0 ? last.dp.forward_seconds / last.dp.seconds : 0.0;
}
BENCHMARK(BM_DpRankCold)->Unit(benchmark::kMicrosecond);

/// The sweep engine's per-point configuration: one warm kernel,
/// solve_into reusing the result's buffers. The `steady_allocs` counter
/// is the exact operator-new count of 1000 warm solves measured outside
/// the timed loop — the steady-state zero-allocation contract
/// (DESIGN.md Section 10.6); bench_compare.py --strict-counters fails
/// the run if it ever leaves zero.
void BM_DpRankSteady(benchmark::State& state) {
  const core::Instance& inst = baseline_instance();
  core::DpOptions opt;
  opt.build_trace = false;
  core::DpKernel kernel;
  core::RankResult last;
  kernel.solve_into(inst, opt, last);  // warm-up: pool + result buffers

  const std::int64_t before = util::alloc_total();
  for (int i = 0; i < 1000; ++i) kernel.solve_into(inst, opt, last);
  const std::int64_t steady = util::alloc_total() - before;

  for (auto _ : state) {
    kernel.solve_into(inst, opt, last);
    benchmark::DoNotOptimize(last.rank);
  }
  if (util::alloc_counter_enabled()) {
    state.counters["steady_allocs"] = static_cast<double>(steady);
  }
  state.counters["arena_bytes"] = static_cast<double>(last.dp.arena_bytes);
}
BENCHMARK(BM_DpRankSteady)->Unit(benchmark::kMicrosecond);

/// The same solve fed its own witness as a warm start — the best case a
/// sweep neighbour can offer. Results are bitwise-identical to the cold
/// solve; only the pruning pressure moves.
void BM_DpRankWarm(benchmark::State& state) {
  const core::Instance& inst = baseline_instance();
  core::DpOptions opt;
  opt.build_trace = false;
  const core::RankResult cold = core::dp_rank(inst, opt);
  opt.warm_start = &cold.witness;
  core::RankResult last;
  for (auto _ : state) {
    last = core::dp_rank(inst, opt);
    benchmark::DoNotOptimize(last.rank);
  }
  state.counters["warm_hit"] = last.dp.warm_start_hit ? 1.0 : 0.0;
  state.counters["pruned_entries"] =
      static_cast<double>(last.dp.pruned_entries);
}
BENCHMARK(BM_DpRankWarm)->Unit(benchmark::kMicrosecond);

/// Pruning disabled (the differential-test configuration): the gap to
/// BM_DpRankCold is the incumbent bound's contribution.
void BM_DpRankNoPruning(benchmark::State& state) {
  const core::Instance& inst = baseline_instance();
  core::DpOptions opt;
  opt.build_trace = false;
  opt.enable_pruning = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dp_rank(inst, opt).rank);
  }
}
BENCHMARK(BM_DpRankNoPruning)->Unit(benchmark::kMicrosecond);

/// The Lemma-1 delay-free packer on its own — the per-candidate cost the
/// best-first search pays for each verification.
void BM_FreePack(benchmark::State& state) {
  const core::Instance& inst = baseline_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::free_pack_feasible(inst, core::FreePackInput{}));
  }
}
BENCHMARK(BM_FreePack)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
