/// Sensitivity ablation — quantifies the paper's concluding claim that
/// "it is not possible to enable future MPU-class designs by material
/// improvements alone": rank elasticities of all four Table 4 parameters
/// at the baseline, at a low-k corner, and at a high-clock corner.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sensitivity.hpp"
#include "src/util/units.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("Sensitivity ablation: rank elasticities", setup);
  const wld::Wld wld = core::default_wld(setup.design);

  struct Corner {
    const char* name;
    double k;
    double clock;
  };
  const Corner corners[] = {
      {"baseline (K=3.9, 0.5GHz)", 3.9, 0.5e9},
      {"low-k corner (K=2.7)", 2.7, 0.5e9},
      {"high-clock corner (1.2GHz)", 3.9, 1.2e9},
  };

  for (const Corner& corner : corners) {
    core::RankOptions opts = setup.options;
    opts.ild_permittivity = corner.k;
    opts.clock_frequency = corner.clock;
    const auto sens =
        core::rank_sensitivities(setup.design, opts, wld, 0.05);

    util::TextTable table(corner.name);
    table.set_header({"parameter", "value", "rank@-5%", "rank@base",
                      "rank@+5%", "elasticity"});
    for (const auto& s : sens) {
      table.add_row({core::to_string(s.parameter),
                     util::TextTable::num(s.base_value, 3),
                     util::TextTable::num(s.low_normalized, 4),
                     util::TextTable::num(s.base_normalized, 4),
                     util::TextTable::num(s.high_normalized, 4),
                     util::TextTable::num(s.elasticity, 2)});
    }
    std::cout << table << "\n";
  }

  std::cout << "Reading: |elasticity| ~1 for the repeater budget R (the\n"
               "budget-limited signature), larger for the capacitance levers\n"
               "K and M, and the levers interact — the co-optimization point\n"
               "of the paper's conclusion.\n";
  return 0;
}
