/// Experiment E10 — paper Figure 1 (schematic): the layer-pair assignment
/// picture. Prints the optimal embedding of the baseline WLD as a
/// per-pair profile: longest wires on the topmost (global) pairs, shorter
/// wires descending, repeaters concentrated in the delay-met prefix, via
/// blockage charged downward.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/core/verify.hpp"
#include "src/util/units.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E10 / Figure 1: layer-pair assignment profile", setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const core::Instance inst =
      core::build_instance(setup.design, setup.options, wld);
  const auto r = core::dp_rank(inst);

  std::cout << "Total wires " << r.total_wires << ", rank " << r.rank << " ("
            << util::TextTable::num(r.normalized, 4) << " normalized), "
            << r.repeater_count << " repeaters using "
            << util::TextTable::num(r.repeater_area_used / units::mm2, 2)
            << " of "
            << util::TextTable::num(inst.repeater_budget() / units::mm2, 2)
            << " mm^2 budget\n\n";

  util::TextTable table("per layer-pair (top to bottom)");
  table.set_header({"pair", "wires", "meet_delay", "wire_area_mm2",
                    "blockage_mm2", "utilization", "repeaters"});
  for (const core::PairUsage& u : r.usage) {
    table.add_row({u.pair_name, std::to_string(u.wires_total),
                   std::to_string(u.wires_meeting_delay),
                   util::TextTable::num(u.wire_area / units::mm2, 3),
                   util::TextTable::num(u.via_blockage / units::mm2, 4),
                   util::TextTable::num(
                       (u.wire_area + u.via_blockage) / inst.pair_capacity(),
                       3),
                   std::to_string(u.repeaters)});
  }
  std::cout << table;

  const auto verdict = core::verify_placements(inst, r);
  std::cout << "\nIndependent certificate check ("
            << r.placements.size() << " placement rows): "
            << (verdict.ok ? "PASS" : "FAIL: " + verdict.failure) << "\n";
  std::cout << "Figure 1 invariants verified:\n"
               "  - wires assigned longest-first, topmost pair downward\n"
               "  - delay-met wires form a prefix of the rank order\n"
               "  - repeaters inserted in longer wires first\n";
  return 0;
}
