/// Experiment E3 — paper Table 4, column C: variation of normalized rank
/// with target clock frequency (0.5 to 1.7 GHz) for the 130 nm / 1M gate
/// baseline.
///
/// Paper reference series: 0.5 GHz -> 0.3973 declining gently to
/// 1.0 GHz -> 0.3822, then plateaus 0.3097 (1.1-1.5 GHz) and 0.2356
/// (1.6-1.7 GHz). Expected shape: monotone decline with plateau steps —
/// the plateaus arise where short wires become unbufferable under the
/// minimum repeater-spacing rule, quantized at integer-pitch lengths.

#include <cmath>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/sweep.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("E3 / Table 4 column C: rank vs target clock frequency",
                      setup);

  const wld::Wld wld = core::default_wld(setup.design);
  const auto sweep = core::sweep_parameter(
      setup.design, setup.options, wld,
      core::SweepParameter::kClockFrequency, core::table4_c_values(), 4);

  util::TextTable table("rank vs C (130nm, 1M gates)");
  table.set_header({"C_Hz", "normalized_rank", "rank_wires", "repeaters"});
  for (const auto& p : sweep.points) {
    table.add_row({util::TextTable::sci(p.value, 2),
                   util::TextTable::num(p.result.normalized, 6),
                   std::to_string(p.result.rank),
                   std::to_string(p.result.repeater_count)});
  }
  std::cout << table;

  // The paper's plateaus come from wires turning unbufferable in integer
  // quanta; in our regime the analogous quantization shows up as steps in
  // the repeater demand (stage-count ceilings) while the budget-bound
  // rank keeps declining between them. Count both signatures.
  int rank_plateaus = 0;
  int demand_steps = 0;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].result.rank == sweep.points[i - 1].result.rank) {
      ++rank_plateaus;
    }
    const double prev =
        static_cast<double>(sweep.points[i - 1].result.repeater_count);
    const double cur =
        static_cast<double>(sweep.points[i].result.repeater_count);
    if (std::abs(cur - prev) > 0.01 * prev) ++demand_steps;
  }
  std::cout << "Rank plateau points: " << rank_plateaus
            << "; repeater-demand quantization steps: " << demand_steps
            << " (paper shows 8 of 12 C points on rank plateaus; see"
               " EXPERIMENTS.md for the regime discussion)\n";

  const core::SweepProfile& prof = sweep.profile;
  std::cout << "sweep profile: " << prof.build.builds << " builds ("
            << prof.build.coarsen.hits + prof.build.die.hits +
                   prof.build.stack.hits + prof.build.plans.hits
            << " stage cache hits, "
            << prof.build.coarsen.misses + prof.build.die.misses +
                   prof.build.stack.misses + prof.build.plans.misses
            << " misses), build "
            << util::TextTable::num(prof.build.total_seconds * 1e3, 1)
            << " ms, dp " << util::TextTable::num(prof.dp_seconds * 1e3, 1)
            << " ms (" << prof.dp_arena_nodes << " nodes, "
            << prof.dp_heap_pops << " heap pops), wall "
            << util::TextTable::num(prof.total_seconds * 1e3, 1) << " ms on "
            << prof.threads << " threads\n";
  return 0;
}
