/// Noise-constrained rank — the crosstalk extension: sweeps the
/// charge-sharing noise budget and shows how the rank collapses as
/// min-pitch layer-pairs are excluded from carrying delay-met wires,
/// then how spacing tuning (shield-like de-coupling) buys it back.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/tech/noise.hpp"
#include "src/tech/tuning.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("crosstalk extension: noise-constrained rank", setup);
  const wld::Wld wld = core::default_wld(setup.design);

  // Per-pair noise ratios under the regime's capacitance model.
  const auto arch =
      tech::Architecture::build(setup.design.node, setup.design.arch);
  const tech::RcParams rc{setup.design.node.conductor,
                          setup.options.ild_permittivity,
                          setup.options.miller_factor, setup.options.cap_model};
  util::TextTable ratios("charge-sharing noise ratio per layer-pair");
  ratios.set_header({"pair", "noise_ratio"});
  for (const auto& pair : arch.pairs()) {
    ratios.add_row({pair.name,
                    util::TextTable::num(
                        tech::coupling_noise_ratio(pair.geometry, rc), 3)});
  }
  std::cout << ratios << "\n";

  util::TextTable sweep("rank vs noise budget");
  sweep.set_header({"max_noise_ratio", "normalized_rank", "all_assigned"});
  for (const double budget : {1.0, 0.9, 0.85, 0.8, 0.75, 0.7, 0.5}) {
    core::RankOptions opts = setup.options;
    opts.max_noise_ratio = budget;
    const auto r = core::compute_rank(setup.design, opts, wld);
    sweep.add_row({util::TextTable::num(budget, 2),
                   util::TextTable::num(r.normalized, 4),
                   r.all_assigned ? "yes" : "no"});
  }
  std::cout << sweep << "\n";

  // Spacing tuning as the recovery lever: widen semi-global spacing.
  tech::NodeTuning tuning;
  tuning.semi_global.spacing = 2.0;
  tuning.local.spacing = 2.0;
  core::DesignSpec tuned = setup.design;
  tuned.node = tech::apply_tuning(setup.design.node, tuning);

  core::RankOptions tight = setup.options;
  tight.max_noise_ratio = 0.75;
  const auto before = core::compute_rank(setup.design, tight, wld);
  const auto after = core::compute_rank(tuned, tight, wld);
  util::TextTable recover("recovery via 2x spacing (budget 0.75)");
  recover.set_header({"design", "normalized_rank"});
  recover.add_row({"min-pitch (Table 3)",
                   util::TextTable::num(before.normalized, 4)});
  recover.add_row({"2x spaced semi-global+local",
                   util::TextTable::num(after.normalized, 4)});
  std::cout << recover;
  std::cout << "\nWider spacing lowers the coupling ratio below the budget\n"
               "at the cost of routing pitch — the noise/density trade the\n"
               "paper's co-optimization conclusion anticipates.\n";
  return 0;
}
