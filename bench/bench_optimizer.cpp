/// Experiment E12a — rank-driven interconnect architecture optimization
/// (the paper's Section 6 future work: "direct optimization of
/// interconnect architectures according to our proposed metric").
/// Searches layer-pair allocations around the Table 2 baseline and ranks
/// them under the metric.

#include <iostream>

#include "bench/bench_common.hpp"
#include "src/core/optimizer.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header(
      "E12a / Section 6: rank-driven architecture optimization", setup);

  const wld::Wld wld = core::default_wld(setup.design);
  core::OptimizerOptions search;
  search.min_total_pairs = 2;
  search.max_total_pairs = 5;
  search.max_global_pairs = 2;
  search.max_semi_global_pairs = 3;
  search.max_local_pairs = 2;

  const auto result = core::optimize_architecture(
      setup.design.node, setup.design.gate_count, setup.options, wld, search);

  util::TextTable table("evaluated architectures (G+S+L layer-pairs)");
  table.set_header({"global", "semi", "local", "pairs", "normalized_rank",
                    "all_assigned"});
  for (const auto& cand : result.evaluated) {
    table.add_row({std::to_string(cand.spec.global_pairs),
                   std::to_string(cand.spec.semi_global_pairs),
                   std::to_string(cand.spec.local_pairs),
                   std::to_string(cand.spec.total_pairs()),
                   util::TextTable::num(cand.result.normalized, 6),
                   cand.result.all_assigned ? "yes" : "no"});
  }
  std::cout << table;

  std::cout << "\nBest architecture: " << result.best.spec.global_pairs << "G+"
            << result.best.spec.semi_global_pairs << "S+"
            << result.best.spec.local_pairs << "L, normalized rank "
            << util::TextTable::num(result.best.result.normalized, 6)
            << " (Table 2 baseline is 1G+2S+1L)\n";
  return 0;
}
