/// Metric robustness under WLD sampling noise — the rank is meant to be a
/// *design-dependent* IA quality metric (paper Section 3); this bench
/// quantifies how stable it is when the WLD is a Monte-Carlo sample of
/// the Davis model rather than its closed-form expectation, i.e. the
/// variation a real design of the same Rent statistics would show.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/core/dp_rank.hpp"
#include "src/wld/davis.hpp"

int main() {
  using namespace iarank;
  const core::PaperSetup setup = core::paper_baseline();
  bench::print_header("rank stability under sampled WLDs", setup);

  const wld::DavisParams params{setup.design.gate_count, 0.6, 4.0, 3.0};
  const wld::DavisModel model(params);

  const auto expectation = core::compute_rank(setup.design, setup.options,
                                              model.generate());
  std::cout << "closed-form WLD rank: "
            << util::TextTable::num(expectation.normalized, 5) << "\n\n";

  const auto wires =
      static_cast<std::int64_t>(params.total_interconnects());
  std::vector<double> ranks;
  util::TextTable table("10 Monte-Carlo WLD samples");
  table.set_header({"seed", "normalized_rank", "delta_vs_expectation"});
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto sampled = model.sample(wires, seed);
    const auto r = core::compute_rank(setup.design, setup.options, sampled);
    ranks.push_back(r.normalized);
    table.add_row({std::to_string(seed),
                   util::TextTable::num(r.normalized, 5),
                   util::TextTable::num(r.normalized - expectation.normalized,
                                        5)});
  }
  std::cout << table << "\n";

  double mean = 0.0;
  for (const double r : ranks) mean += r;
  mean /= static_cast<double>(ranks.size());
  double var = 0.0;
  for (const double r : ranks) var += (r - mean) * (r - mean);
  var /= static_cast<double>(ranks.size());
  std::cout << "mean " << util::TextTable::num(mean, 5) << ", stddev "
            << util::TextTable::num(std::sqrt(var), 5) << "\n\n";
  std::cout << "The spread is dominated not by histogram noise (negligible at\n"
               "3M samples) but by the extreme-value variation of the longest\n"
               "sampled wire, which sets the target-delay normalization l_max\n"
               "(paper Section 4.1: d_i scales with l_i/l_max). A robustness\n"
               "caveat of the metric definition itself — normalizing targets\n"
               "by a fixed die diagonal rather than the sampled maximum would\n"
               "remove it.\n";
  return 0;
}
