/// \file wld_report.cpp
/// \brief Generates Davis wire-length distributions (the paper's WLD
/// substrate, reference [4]) and prints a detailed report; optionally
/// writes the distribution to a file that can be fed back into rank
/// computations.
///
/// Usage: wld_report [gates] [rent_p] [output.wld]

#include <iostream>

#include "src/iarank.hpp"

int main(int argc, char** argv) {
  using namespace iarank;
  // util::parse_* instead of atoll/atof: locale-independent and loud on
  // garbage instead of silently yielding 0.
  const std::int64_t gates = argc > 1 ? util::parse_int(argv[1]) : 1000000;
  const double rent_p = argc > 2 ? util::parse_double(argv[2]) : 0.6;

  const wld::DavisParams params{gates, rent_p, 4.0, 3.0};
  const wld::DavisModel model(params);
  const wld::Wld w = model.generate();
  const auto stats = w.stats();

  std::cout << "Davis WLD report\n";
  std::cout << "  gates          : " << gates << "\n";
  std::cout << "  Rent exponent  : " << rent_p << "\n";
  std::cout << "  Rent total     : "
            << util::TextTable::num(params.total_interconnects(), 0)
            << " wires (alpha k N (1 - N^(p-1)))\n";
  std::cout << "  generated      : " << w.total_wires() << " wires in "
            << w.group_count() << " length groups\n";
  std::cout << "  lengths        : [" << stats.min_length << ", "
            << stats.max_length << "] gate pitches (2 sqrt(N) = "
            << util::TextTable::num(params.max_length(), 0) << ")\n";
  std::cout << "  mean / median  : " << util::TextTable::num(stats.mean_length, 2)
            << " / " << util::TextTable::num(stats.median_length, 1) << "\n";
  std::cout << "  total length   : "
            << util::TextTable::num(stats.total_length, 0) << " pitches\n\n";

  util::TextTable table("distribution detail");
  table.set_header({"percentile_longest", "length_pitches"});
  for (const double pct : {0.01, 0.1, 1.0, 5.0, 10.0, 25.0, 50.0}) {
    const auto rank = static_cast<std::int64_t>(
        pct / 100.0 * static_cast<double>(w.total_wires()));
    table.add_row({util::TextTable::num(pct, 2),
                   util::TextTable::num(
                       w.length_at_rank(std::max<std::int64_t>(1, rank)), 1)});
  }
  std::cout << table << "\n";

  util::TextTable coarse("coarsening preview");
  coarse.set_header({"bunch_size", "assignment_units"});
  for (const std::int64_t bs : {1LL, 1000LL, 10000LL, 100000LL}) {
    coarse.add_row({std::to_string(bs),
                    std::to_string(wld::bunch_count(w, bs))});
  }
  std::cout << coarse;

  if (argc > 3) {
    wld::save_wld(argv[3], w);
    std::cout << "\nWrote distribution to " << argv[3] << "\n";
  }
  return 0;
}
