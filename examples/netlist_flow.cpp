/// \file netlist_flow.cpp
/// \brief The fully design-dependent flow: synthesize a Rent-driven
/// netlist, place it hierarchically, extract its wire length
/// distribution, and compute the rank of an interconnect architecture
/// for *that* design — no a-priori WLD model involved.
///
/// Usage: netlist_flow [levels] [rent_p] [seed]
///   levels — N = 4^levels gates (default 8 = 65536)

#include <algorithm>
#include <cmath>
#include <iostream>

#include "src/iarank.hpp"

int main(int argc, char** argv) {
  using namespace iarank;

  // util::parse_* instead of atoi/atof/strtoull: locale-independent and
  // loud on garbage instead of silently yielding 0.
  netlist::GeneratorParams gen;
  gen.levels = argc > 1 ? static_cast<int>(util::parse_int(argv[1])) : 8;
  gen.rent_p = argc > 2 ? util::parse_double(argv[2]) : 0.6;
  gen.seed =
      argc > 3 ? static_cast<std::uint64_t>(util::parse_int(argv[3])) : 1;

  std::cout << "1. Synthesizing netlist: " << gen.gate_count()
            << " gates, Rent p = " << gen.rent_p << "\n";
  const netlist::Netlist nl = netlist::generate_netlist(gen);
  std::cout << "   " << nl.net_count() << " nets, average degree "
            << util::TextTable::num(nl.average_degree(), 2) << "\n";

  std::cout << "2. Measuring Rent characteristic of the placed design\n";
  auto points = netlist::rent_characteristic(nl);
  if (points.size() > 2) points.resize(points.size() - 2);
  const auto fit = netlist::fit_rent(points);
  std::cout << "   fitted p = " << util::TextTable::num(fit.exponent, 3)
            << ", k = " << util::TextTable::num(fit.coefficient, 2) << "\n";

  std::cout << "3. Extracting the wire length distribution\n";
  const wld::Wld wld = netlist::extract_wld(nl);
  std::cout << "   " << wld.describe() << "\n";

  std::cout << "4. Computing the rank of the Table 2 baseline architecture\n";
  const core::PaperSetup setup = core::paper_baseline(
      "130nm", gen.gate_count(), core::scaled_regime(gen.gate_count()));
  core::RankOptions options = setup.options;
  options.bunch_size = std::max<std::int64_t>(
      1, gen.gate_count() / 100);

  const core::RankResult r = core::compute_rank(setup.design, options, wld);
  std::cout << "   rank " << r.rank << " of " << r.total_wires << " nets ("
            << util::TextTable::num(r.normalized, 4) << " normalized), "
            << r.repeater_count << " repeaters\n";

  std::cout << "\nPer-pair profile:\n";
  for (const auto& u : r.usage) {
    std::cout << "   " << u.pair_name << ": " << u.wires_total << " nets, "
              << u.wires_meeting_delay << " meet delay\n";
  }
  return 0;
}
