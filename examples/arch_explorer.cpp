/// \file arch_explorer.cpp
/// \brief Rank-driven architecture exploration (the paper's Section 6
/// future work). Searches over layer-pair allocations and ILD aspect
/// factors for a given node and gate count, printing the Pareto view of
/// rank versus total layer-pair count.
///
/// Usage: arch_explorer [node] [gates]
///   node  — 180nm | 130nm | 90nm (default 130nm)
///   gates — design size (default 1000000)

#include <cstdlib>
#include <iostream>
#include <map>

#include "src/iarank.hpp"

int main(int argc, char** argv) {
  using namespace iarank;
  const std::string node = argc > 1 ? argv[1] : "130nm";
  const std::int64_t gates = argc > 2 ? std::atoll(argv[2]) : 1000000;

  const core::PaperSetup setup = core::paper_baseline(node, gates);
  const wld::Wld wld = core::default_wld(setup.design);

  std::cout << "Architecture exploration: " << node << ", " << gates
            << " gates, rank metric objective\n\n";

  core::OptimizerOptions search;
  search.min_total_pairs = 2;
  search.max_total_pairs = 6;
  search.max_global_pairs = 2;
  search.max_semi_global_pairs = 3;
  search.max_local_pairs = 2;
  search.ild_height_factors = {0.8, 1.0, 1.2};

  const auto result = core::optimize_architecture(
      setup.design.node, gates, setup.options, wld, search);

  // Pareto view: best rank at each total pair count.
  std::map<int, const core::ArchCandidate*> best_at;
  for (const auto& cand : result.evaluated) {
    const int total = cand.spec.total_pairs();
    auto it = best_at.find(total);
    if (it == best_at.end() || cand.result.rank > it->second->result.rank) {
      best_at[total] = &cand;
    }
  }

  util::TextTable table("best architecture per layer-pair budget");
  table.set_header({"pairs", "allocation(G+S+L)", "ild_factor",
                    "normalized_rank", "all_assigned"});
  for (const auto& [total, cand] : best_at) {
    table.add_row({std::to_string(total),
                   std::to_string(cand->spec.global_pairs) + "+" +
                       std::to_string(cand->spec.semi_global_pairs) + "+" +
                       std::to_string(cand->spec.local_pairs),
                   util::TextTable::num(cand->spec.ild_height_factor, 1),
                   util::TextTable::num(cand->result.normalized, 4),
                   cand->result.all_assigned ? "yes" : "no"});
  }
  std::cout << table << "\n";

  std::cout << "Overall best: " << result.best.spec.global_pairs << "G+"
            << result.best.spec.semi_global_pairs << "S+"
            << result.best.spec.local_pairs << "L @ ild_factor "
            << result.best.spec.ild_height_factor << " -> rank "
            << util::TextTable::num(result.best.result.normalized, 4) << "\n";
  std::cout << "(" << result.evaluated.size()
            << " architectures evaluated; the metric favours global-heavy\n"
               "stacks because their wires buffer cheaply — cost models for\n"
               "thick-metal masks would temper this, which is exactly the\n"
               "co-optimization the paper's conclusion calls for.)\n";
  return 0;
}
