/// \file material_study.cpp
/// \brief Reproduces the paper's headline material-technology comparison:
/// how much low-k dielectric (smaller K) versus coupling shielding
/// (smaller Miller factor) buys in rank, and where the two are equivalent
/// (paper Section 5.2: 38% K reduction == 42.5% M reduction).
///
/// Usage: material_study [target_rank_gain]
///   target_rank_gain — desired rank improvement factor (default 1.25).

#include <cmath>
#include <iostream>

#include "src/iarank.hpp"

int main(int argc, char** argv) {
  using namespace iarank;
  // util::parse_double, not atof: atof is locale-sensitive (comma decimal
  // locales silently truncate "1.25" to 1) and swallows trailing garbage.
  const double gain = argc > 1 ? util::parse_double(argv[1]) : 1.25;

  const core::PaperSetup setup = core::paper_baseline();
  const wld::Wld wld = core::default_wld(setup.design);

  std::cout << "Material study on " << setup.design.node.name << " / "
            << setup.design.gate_count << " gates\n\n";

  const auto k_sweep = core::sweep_parameter(
      setup.design, setup.options, wld,
      core::SweepParameter::kIldPermittivity, util::linspace(3.9, 1.8, 43));
  const auto m_sweep = core::sweep_parameter(
      setup.design, setup.options, wld, core::SweepParameter::kMillerFactor,
      util::linspace(2.0, 1.0, 41));

  const double base = k_sweep.points.front().result.normalized;
  std::cout << "Baseline rank (K=3.9, M=2.0): "
            << util::TextTable::num(base, 4) << "\n";

  util::TextTable table("rank vs material levers");
  table.set_header({"lever", "value", "normalized_rank"});
  for (std::size_t i = 0; i < k_sweep.points.size(); i += 7) {
    const auto& p = k_sweep.points[i];
    table.add_row({"ILD permittivity K", util::TextTable::num(p.value, 2),
                   util::TextTable::num(p.result.normalized, 4)});
  }
  for (std::size_t i = 0; i < m_sweep.points.size(); i += 8) {
    const auto& p = m_sweep.points[i];
    table.add_row({"Miller factor M", util::TextTable::num(p.value, 2),
                   util::TextTable::num(p.result.normalized, 4)});
  }
  std::cout << table << "\n";

  const double target = base * gain;
  const double k_star = core::value_reaching_rank(k_sweep, target);
  const double m_star = core::value_reaching_rank(m_sweep, target);
  std::cout << "Target: " << gain << "x rank improvement (rank "
            << util::TextTable::num(target, 4) << ")\n";
  if (std::isnan(k_star) || std::isnan(m_star)) {
    std::cout << "Not reachable by one lever alone within the swept range.\n";
    return 0;
  }
  const double k_red = 100.0 * (3.9 - k_star) / 3.9;
  const double m_red = 100.0 * (2.0 - m_star) / 2.0;
  std::cout << "  via dielectric alone: K = " << util::TextTable::num(k_star, 2)
            << " (" << util::TextTable::num(k_red, 1) << "% reduction)\n";
  std::cout << "  via shielding alone:  M = " << util::TextTable::num(m_star, 2)
            << " (" << util::TextTable::num(m_red, 1) << "% reduction)\n";
  std::cout << "Equivalence ratio M%/K% = "
            << util::TextTable::num(m_red / k_red, 2)
            << " (paper's data point: 42.5% / 38% = 1.12)\n";
  return 0;
}
