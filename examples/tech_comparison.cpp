/// \file tech_comparison.cpp
/// \brief Compares interconnect architectures across the three technology
/// nodes of the paper's Table 3 (180/130/90 nm) and two design sizes,
/// using the rank metric as the single figure of merit — exactly the
/// cross-technology comparison the metric was designed for.

#include <iostream>

#include "src/iarank.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;

  std::cout << "Rank-based technology comparison (Table 2 baselines)\n\n";

  util::TextTable table("per node and design size");
  table.set_header({"node", "gates", "die_mm2", "budget_mm2", "wires",
                    "normalized_rank", "repeaters"});
  for (const char* node : {"180nm", "130nm", "90nm"}) {
    for (const std::int64_t gates : {1000000LL, 4000000LL}) {
      const core::PaperSetup setup = core::paper_baseline(node, gates);
      const wld::Wld wld = core::default_wld(setup.design);
      const tech::DieModel die({gates, setup.design.node.gate_pitch(),
                                setup.options.repeater_fraction});
      const auto r = core::compute_rank(setup.design, setup.options, wld);
      table.add_row({node, std::to_string(gates),
                     util::TextTable::num(die.die_area() / units::mm2, 1),
                     util::TextTable::num(
                         die.repeater_area_budget() / units::mm2, 1),
                     std::to_string(wld.total_wires()),
                     util::TextTable::num(r.normalized, 4),
                     std::to_string(r.repeater_count)});
    }
  }
  std::cout << table << "\n";

  // What a low-k migration buys at each node (K 3.9 -> 2.7).
  util::TextTable lowk("low-k migration (K 3.9 -> 2.7), 1M gates");
  lowk.set_header({"node", "rank@3.9", "rank@2.7", "gain"});
  for (const char* node : {"180nm", "130nm", "90nm"}) {
    const core::PaperSetup setup = core::paper_baseline(node);
    const wld::Wld wld = core::default_wld(setup.design);
    const auto base = core::compute_rank(setup.design, setup.options, wld);
    core::RankOptions low = setup.options;
    low.ild_permittivity = 2.7;
    const auto improved = core::compute_rank(setup.design, low, wld);
    lowk.add_row({node, util::TextTable::num(base.normalized, 4),
                  util::TextTable::num(improved.normalized, 4),
                  util::TextTable::num(
                      improved.normalized / base.normalized, 3) + "x"});
  }
  std::cout << lowk;
  return 0;
}
