/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the iarank public API.
///
/// Builds the paper's baseline design (130 nm node, 1M gates, 1 global +
/// 2 semi-global + 1 local layer-pair), generates the Davis WLD at Rent
/// p = 0.6, and computes the rank of the architecture — the number of
/// longest wires that meet their clock-derived target delay under the
/// 40% repeater-area budget.

#include <iostream>

#include "src/iarank.hpp"

int main() {
  using namespace iarank;
  namespace units = util::units;

  // The paper's Table 2 baseline at 130 nm with 1M gates, in the
  // calibrated operating regime (K=3.9, M=2, f_c=500 MHz, R=0.4,
  // bunch 10000 — see EXPERIMENTS.md for the calibration).
  const core::PaperSetup setup = core::paper_baseline("130nm");
  const core::DesignSpec& design = setup.design;
  const core::RankOptions& options = setup.options;

  std::cout << "Technology   : " << design.node.name << "\n";
  std::cout << "Gates        : " << design.gate_count << "\n";

  const tech::Architecture arch =
      tech::Architecture::build(design.node, design.arch);
  std::cout << arch.describe();

  const wld::Wld wld = core::default_wld(design);
  std::cout << wld.describe() << "\n";

  const core::RankResult result = core::compute_rank(design, options, wld);

  std::cout << "\nRank r(alpha)      : " << result.rank << " wires\n";
  std::cout << "Normalized rank    : " << result.normalized << "\n";
  std::cout << "All wires assigned : " << (result.all_assigned ? "yes" : "no")
            << "\n";
  std::cout << "Repeaters used     : " << result.repeater_count << " ("
            << result.repeater_area_used / units::mm2 << " mm^2 of "
            << "budget)\n";

  std::cout << "\nPer-layer-pair assignment (top to bottom):\n";
  for (const core::PairUsage& u : result.usage) {
    std::cout << "  " << u.pair_name << ": " << u.wires_total << " wires ("
              << u.wires_meeting_delay << " meet delay), wiring "
              << u.wire_area / units::mm2 << " mm^2, blockage "
              << u.via_blockage / units::mm2 << " mm^2, " << u.repeaters
              << " repeaters\n";
  }
  return 0;
}
