/// \file rank_tool.cpp
/// \brief Config-driven command-line front end for the rank metric.
///
/// Usage:
///   rank_tool <config-file> [command] [args...]
///
/// Commands:
///   rank                      (default) compute and print the rank
///   sweep <K|M|C|R> <lo> <hi> <steps> [--csv] [--out file.csv]
///                             sweep one Table 4 parameter (4 threads)
///   profile                   print the per-layer-pair assignment trace,
///                             DP effort counters and the staged builder's
///                             cache profile, and verify its placement
///                             certificate
///   sensitivity               print rank elasticities of K, M, C, R
///   wld                       print the WLD summary used for this design
///
/// The config format is documented in src/core/config_run.hpp; sample
/// files live under configs/.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/iarank.hpp"
#include "src/core/config_run.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/verify.hpp"

namespace {

using namespace iarank;

int cmd_rank(const core::RunSpec& spec, const wld::Wld& wld) {
  const auto r = core::compute_rank(spec.design, spec.options, wld);
  std::cout << "rank            = " << r.rank << "\n";
  std::cout << "normalized_rank = " << util::TextTable::num(r.normalized, 6)
            << "\n";
  std::cout << "all_assigned    = " << (r.all_assigned ? "yes" : "no") << "\n";
  std::cout << "repeaters       = " << r.repeater_count << "\n";
  std::cout << "repeater_area   = " << r.repeater_area_used << " m^2\n";
  return 0;
}

int cmd_profile(const core::RunSpec& spec, const wld::Wld& wld) {
  core::InstanceBuilder builder(spec.design, wld);
  const auto inst = builder.build(spec.options);
  const auto r = core::dp_rank(inst);
  util::TextTable table("assignment profile (top pair first)");
  table.set_header({"pair", "wires", "meet_delay", "repeaters"});
  for (const auto& u : r.usage) {
    table.add_row({u.pair_name, std::to_string(u.wires_total),
                   std::to_string(u.wires_meeting_delay),
                   std::to_string(u.repeaters)});
  }
  std::cout << table;

  util::TextTable dp_table("dp effort");
  dp_table.set_header({"metric", "value"});
  dp_table.add_row({"arena nodes", std::to_string(r.dp.arena_nodes)});
  dp_table.add_row({"max frontier", std::to_string(r.dp.max_frontier)});
  dp_table.add_row({"heap pops", std::to_string(r.dp.heap_pops)});
  dp_table.add_row({"verify calls", std::to_string(r.dp.verify_calls)});
  dp_table.add_row(
      {"forward ms", util::TextTable::num(r.dp.forward_seconds * 1e3, 3)});
  dp_table.add_row({"total ms", util::TextTable::num(r.dp.seconds * 1e3, 3)});
  std::cout << dp_table;

  // Rebuild once more: the second pass hits every stage cache, which is
  // what a Table 4 sweep exploits point to point.
  (void)builder.build(spec.options);
  const core::BuildProfile prof = builder.profile();
  util::TextTable stage_table("instance builder stages (2 builds)");
  stage_table.set_header({"stage", "hits", "misses", "miss ms"});
  const auto stage_row = [&](const char* name,
                             const core::StageCounters& c) {
    stage_table.add_row({name, std::to_string(c.hits),
                         std::to_string(c.misses),
                         util::TextTable::num(c.seconds * 1e3, 3)});
  };
  stage_row("coarsen", prof.coarsen);
  stage_row("die", prof.die);
  stage_row("stack", prof.stack);
  stage_row("plans", prof.plans);
  std::cout << stage_table;

  const auto verdict = core::verify_placements(inst, r);
  std::cout << "certificate: " << (verdict.ok ? "PASS" : verdict.failure)
            << "\n";
  return 0;
}

int cmd_sensitivity(const core::RunSpec& spec, const wld::Wld& wld) {
  const auto sens =
      core::rank_sensitivities(spec.design, spec.options, wld, 0.05);
  util::TextTable table("rank elasticities (+-5%)");
  table.set_header({"parameter", "value", "elasticity"});
  for (const auto& s : sens) {
    table.add_row({core::to_string(s.parameter),
                   util::TextTable::num(s.base_value, 3),
                   util::TextTable::num(s.elasticity, 2)});
  }
  std::cout << table;
  return 0;
}

int cmd_wld(const core::RunSpec& /*spec*/, const wld::Wld& wld) {
  std::cout << wld.describe() << "\n";
  const auto stats = wld.stats();
  std::cout << "mean length   = " << stats.mean_length << " pitches\n";
  std::cout << "median length = " << stats.median_length << " pitches\n";
  std::cout << "total length  = " << stats.total_length << " pitches\n";
  return 0;
}

int cmd_sweep(const core::RunSpec& spec, const wld::Wld& wld, int argc,
              char** argv) {
  if (argc < 4) {
    std::cerr << "usage: rank_tool <config> sweep <K|M|C|R> <lo> <hi> <steps>"
                 " [--csv]\n";
    return 2;
  }
  core::SweepParameter parameter;
  switch (argv[0][0]) {
    case 'K': parameter = core::SweepParameter::kIldPermittivity; break;
    case 'M': parameter = core::SweepParameter::kMillerFactor; break;
    case 'C': parameter = core::SweepParameter::kClockFrequency; break;
    case 'R': parameter = core::SweepParameter::kRepeaterFraction; break;
    default:
      std::cerr << "unknown sweep parameter '" << argv[0] << "'\n";
      return 2;
  }
  const double lo = std::atof(argv[1]);
  const double hi = std::atof(argv[2]);
  const auto steps = static_cast<std::size_t>(std::atoll(argv[3]));
  const bool csv = argc > 4 && std::strcmp(argv[4], "--csv") == 0;

  const auto sweep = core::sweep_parameter(spec.design, spec.options, wld,
                                           parameter,
                                           util::linspace(lo, hi, steps), 4);
  for (int a = 4; a + 1 < argc; ++a) {
    if (std::strcmp(argv[a], "--out") == 0) {
      core::save_sweep_csv(argv[a + 1], sweep);
      std::cout << "wrote " << argv[a + 1] << "\n";
    }
  }
  util::TextTable table(core::to_string(parameter));
  table.set_header({"value", "normalized_rank", "rank"});
  for (const auto& p : sweep.points) {
    table.add_row({util::TextTable::num(p.value, 4),
                   util::TextTable::num(p.result.normalized, 6),
                   std::to_string(p.result.rank)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << table;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rank_tool <config-file> [rank|sweep|profile|wld] ...\n";
    return 2;
  }
  try {
    const auto config = iarank::util::Config::load(argv[1]);
    const auto spec = iarank::core::run_spec_from_config(config);
    const auto wld = iarank::core::resolve_wld(spec);

    const std::string command = argc > 2 ? argv[2] : "rank";
    if (command == "rank") return cmd_rank(spec, wld);
    if (command == "profile") return cmd_profile(spec, wld);
    if (command == "wld") return cmd_wld(spec, wld);
    if (command == "sensitivity") return cmd_sensitivity(spec, wld);
    if (command == "sweep") return cmd_sweep(spec, wld, argc - 3, argv + 3);
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "rank_tool: " << e.what() << "\n";
    return 1;
  }
}
