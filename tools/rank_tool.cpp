/// \file rank_tool.cpp
/// \brief Config-driven command-line front end for the rank metric.
///
/// Usage:
///   rank_tool <config-file> [command] [args...]
///   rank_tool selfcheck <seeds> [--shrink] [--first-seed N] [--jobs N]
///                       [--checkpoint FILE]
///   rank_tool faultcheck <seeds> [--first-seed N]
///
/// Global observability flags, accepted anywhere on any command line:
///   --trace FILE.json   capture spans and write Chrome trace-event JSON
///                       (load in Perfetto / chrome://tracing); written
///                       even when the command fails
///   --metrics FILE      write the process metric registry; a .json path
///                       gets JSON, anything else Prometheus text
///   --log FILE          append structured JSONL events (one object per
///                       line: ts_ms, sev, type, fields) to FILE
///   --flight-recorder FILE
///                       arm the in-memory event ring; its last ~256
///                       events are dumped to FILE on SIGTERM/SIGINT, on
///                       server backpressure trips, and at exit
///
/// Commands:
///   rank                      (default) compute and print the rank
///   sweep <K|M|C|R> <lo> <hi> <steps> [--csv] [--out file.csv]
///         [--checkpoint FILE] [--jobs N] [--no-warm-start]
///                             sweep one Table 4 parameter (--jobs
///                             concurrent points, default 4).
///                             With --checkpoint, every completed point is
///                             journaled; rerunning after a crash (SIGKILL
///                             included) resumes from the journal and the
///                             results are bitwise identical to an
///                             uninterrupted run. Failed points print as
///                             n/a (<reason>) and never discard the grid.
///                             Each point warm-starts the DP from the
///                             previous point's witness (prune-only;
///                             results identical either way) unless
///                             --no-warm-start.
///   profile                   print the per-layer-pair assignment trace,
///                             DP effort counters and the staged builder's
///                             cache profile, and verify its placement
///                             certificate
///   sensitivity               print rank elasticities of K, M, C, R
///   wld                       print the WLD summary used for this design
///   selfcheck                 differential self-check: run every rank
///                             engine on <seeds> random scenarios and
///                             cross-check the engine-equivalence
///                             contracts (DESIGN.md Section 6); needs no
///                             config file. Exit 1 on any mismatch, with a
///                             seed repro (minimized when --shrink).
///                             --checkpoint journals checked seeds for
///                             crash-resume.
///   trace                     run one instance build + exact DP with
///                             tracing force-enabled and print the
///                             aggregated span tree (count, total ms,
///                             self ms per span path)
///   faultcheck                deterministic fault injection: sweep
///                             one-shot failures across every registered
///                             fault site x <seeds> seeds and assert each
///                             surfaces as an isolated per-point status
///                             (or the injected error), with builder
///                             caches bitwise-reusable afterwards. Needs
///                             no config file. Exit 1 on any violation.
///   serve <config> (--socket PATH | --port N [--host A.B.C.D])
///         [--workers N] [--queue-cap N] [--sweep-jobs N]
///         [--http-port N [--http-host A.B.C.D]] [--slow-ms MS]
///                             run the rank daemon for the configured
///                             scenario (framed JSON protocol, DESIGN.md
///                             Section 11). --http-port adds a plain-HTTP
///                             listener (GET /metrics Prometheus text,
///                             /metrics.json, /healthz, plus the debug
///                             surfaces /debug/requests, /debug/slow and
///                             /debug/trace?ms=N; 0 = kernel-assigned).
///                             Requests slower than --slow-ms (default
///                             100) land in /debug/slow with their stage
///                             breakdown. Prints `listening on <addr>`
///                             (and `http listening on <addr>`) when
///                             ready; SIGTERM/SIGINT drain in-flight
///                             requests, then the process exits 0.
///   request <addr> ping | metrics | rank [key=value ...]
///           | sweep <K|M|C|R> <lo> <hi> <steps> [key=value ...]
///           | raw <json>
///                             one request against a running daemon.
///                             <addr> is unix:<path> or tcp:<host>:<port>.
///                             key=value pairs become per-request option
///                             overrides (same keys as the config file's
///                             Table 4 / modelling block). Exit 0 on an
///                             ok response, 2 on a request error, 1 on an
///                             internal server error. --timeout S bounds
///                             connect and each read (default 30 s);
///                             --retries N reconnects with exponential
///                             backoff on transport failures.
///   explore <spec> [--dir D] [--workers N] [--jobs N] [--chunk N]
///           [--lease-ttl S] [--poison-threshold N] [--fsync] [--worker]
///                             evaluate the cross product of the spec's
///                             explore.* dimension lists (node, rent_p,
///                             target_model, K, M, C, R), sharded across
///                             --workers forked processes through a leased
///                             file work queue with work-stealing; crash-
///                             tolerant (SIGKILLed workers are respawned,
///                             their leases reclaimed, their journals
///                             merged with a bitwise audit) and resumable
///                             (rerun with the same --dir). Writes
///                             points.csv + pareto.csv into --dir.
///                             --worker attaches one standalone worker to
///                             an existing run directory instead.
///
/// Exit codes: 0 success, 1 internal error (or selfcheck/faultcheck
/// failure), 2 user error (bad usage, bad config, bad input file).
///
/// The config format is documented in src/core/config_run.hpp; sample
/// files live under configs/.

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "src/iarank.hpp"
#include "src/core/config_run.hpp"
#include "src/core/explore.hpp"
#include "src/core/faultcheck.hpp"
#include "src/core/instance_builder.hpp"
#include "src/core/selfcheck.hpp"
#include "src/core/sensitivity.hpp"
#include "src/core/verify.hpp"
#include "src/server/protocol.hpp"
#include "src/server/server.hpp"
#include "src/server/service.hpp"
#include "src/util/event_log.hpp"
#include "src/util/json.hpp"
#include "src/util/metrics.hpp"
#include "src/util/strings.hpp"
#include "src/util/trace.hpp"

namespace {

using namespace iarank;

int cmd_rank(const core::RunSpec& spec, const wld::Wld& wld) {
  const auto r = core::compute_rank(spec.design, spec.options, wld);
  std::cout << "rank            = " << r.rank << "\n";
  std::cout << "normalized_rank = " << util::TextTable::num(r.normalized, 6)
            << "\n";
  std::cout << "all_assigned    = " << (r.all_assigned ? "yes" : "no") << "\n";
  std::cout << "repeaters       = " << r.repeater_count << "\n";
  std::cout << "repeater_area   = " << r.repeater_area_used << " m^2\n";
  return 0;
}

int cmd_profile(const core::RunSpec& spec, const wld::Wld& wld) {
  core::InstanceBuilder builder(spec.design, wld);
  const auto inst = builder.build(spec.options);
  const auto r = core::dp_rank(inst);
  util::TextTable table("assignment profile (top pair first)");
  table.set_header({"pair", "wires", "meet_delay", "repeaters"});
  for (const auto& u : r.usage) {
    table.add_row({u.pair_name, std::to_string(u.wires_total),
                   std::to_string(u.wires_meeting_delay),
                   std::to_string(u.repeaters)});
  }
  std::cout << table;

  util::TextTable dp_table("dp effort");
  dp_table.set_header({"metric", "value"});
  dp_table.add_row({"arena nodes", std::to_string(r.dp.arena_nodes)});
  dp_table.add_row({"max frontier", std::to_string(r.dp.max_frontier)});
  dp_table.add_row({"heap pops", std::to_string(r.dp.heap_pops)});
  dp_table.add_row({"verify calls", std::to_string(r.dp.verify_calls)});
  dp_table.add_row({"pruned entries", std::to_string(r.dp.pruned_entries)});
  dp_table.add_row(
      {"frontier dominated", std::to_string(r.dp.frontier_dominated)});
  dp_table.add_row({"frontier erased", std::to_string(r.dp.frontier_erased)});
  dp_table.add_row(
      {"forward ms", util::TextTable::num(r.dp.forward_seconds * 1e3, 3)});
  dp_table.add_row({"total ms", util::TextTable::num(r.dp.seconds * 1e3, 3)});
  std::cout << dp_table;

  // Kernel pool accounting (the iarank_dp_arena_bytes / iarank_pool_*
  // gauges, read back from the registry the solve just published to):
  // chunks going flat across solves is the zero-steady-state-allocation
  // property of the reusable kernel.
  const auto gauges = util::MetricsRegistry::instance().snapshot_values();
  const auto gauge_row = [&](util::TextTable& t, const char* label,
                             const char* metric) {
    const auto it = gauges.find(metric);
    t.add_row({label, it != gauges.end()
                          ? std::to_string(static_cast<long long>(it->second))
                          : "n/a"});
  };
  util::TextTable pool_table("dp kernel pool");
  pool_table.set_header({"metric", "value"});
  pool_table.add_row({"arena bytes (this solve)",
                      std::to_string(r.dp.arena_bytes)});
  gauge_row(pool_table, "pool bytes (high water)", "iarank_pool_bytes");
  gauge_row(pool_table, "pool chunks allocated", "iarank_pool_chunks_total");
  std::cout << pool_table;

  // Rebuild once more: the second pass hits every stage cache, which is
  // what a Table 4 sweep exploits point to point.
  (void)builder.build(spec.options);
  const core::BuildProfile prof = builder.profile();
  util::TextTable stage_table("instance builder stages (2 builds)");
  stage_table.set_header({"stage", "hits", "misses", "miss ms"});
  const auto stage_row = [&](const char* name,
                             const core::StageCounters& c) {
    stage_table.add_row({name, std::to_string(c.hits),
                         std::to_string(c.misses),
                         util::TextTable::num(c.seconds * 1e3, 3)});
  };
  stage_row("coarsen", prof.coarsen);
  stage_row("die", prof.die);
  stage_row("stack", prof.stack);
  stage_row("plans", prof.plans);
  std::cout << stage_table;

  const auto verdict = core::verify_placements(inst, r);
  std::cout << "certificate: " << (verdict.ok ? "PASS" : verdict.failure)
            << "\n";
  return 0;
}

int cmd_sensitivity(const core::RunSpec& spec, const wld::Wld& wld) {
  const auto sens =
      core::rank_sensitivities(spec.design, spec.options, wld, 0.05);
  util::TextTable table("rank elasticities (+-5%)");
  table.set_header({"parameter", "value", "elasticity"});
  for (const auto& s : sens) {
    table.add_row({core::to_string(s.parameter),
                   util::TextTable::num(s.base_value, 3),
                   util::TextTable::num(s.elasticity, 2)});
  }
  std::cout << table;
  return 0;
}

int cmd_wld(const core::RunSpec& /*spec*/, const wld::Wld& wld) {
  std::cout << wld.describe() << "\n";
  const auto stats = wld.stats();
  std::cout << "mean length   = " << stats.mean_length << " pitches\n";
  std::cout << "median length = " << stats.median_length << " pitches\n";
  std::cout << "total length  = " << stats.total_length << " pitches\n";
  return 0;
}

int cmd_trace(const core::RunSpec& spec, const wld::Wld& wld) {
  // Force-enable even without --trace: this command IS the trace viewer.
  util::Trace::enable();
  core::InstanceBuilder builder(spec.design, wld);
  const auto inst = builder.build(spec.options);
  const auto r = core::dp_rank(inst);
  std::cout << "rank = " << r.rank << " (normalized "
            << util::TextTable::num(r.normalized, 6) << ")\n\n";
  std::cout << util::Trace::summary_report();
  return 0;
}

int sweep_usage() {
  std::cerr << "usage: rank_tool <config> sweep <K|M|C|R> <lo> <hi> <steps>"
               " [--csv] [--out file.csv] [--checkpoint file.journal]"
               " [--jobs N] [--no-warm-start]\n";
  return 2;
}

int cmd_sweep(const core::RunSpec& spec, const wld::Wld& wld, int argc,
              char** argv) {
  if (argc < 4) return sweep_usage();

  const std::string token = argv[0];
  core::SweepParameter parameter;
  try {
    parameter = core::sweep_parameter_from_string(token);
  } catch (const util::Error&) {
    std::cerr << "sweep: unknown parameter '" << token << "'\n";
    return sweep_usage();
  }

  double lo = 0.0;
  double hi = 0.0;
  long long steps = 0;
  try {
    lo = util::parse_double(argv[1]);
    hi = util::parse_double(argv[2]);
    steps = util::parse_int(argv[3]);
  } catch (const util::Error& e) {
    std::cerr << "sweep: " << e.what() << "\n";
    return sweep_usage();
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    std::cerr << "sweep: bounds must be finite, got lo=" << argv[1]
              << " hi=" << argv[2] << "\n";
    return sweep_usage();
  }
  if (steps < 2) {
    std::cerr << "sweep: steps must be >= 2, got " << steps << "\n";
    return sweep_usage();
  }

  bool csv = false;
  std::string out;
  core::SweepRunOptions run;
  run.threads = 4;
  for (int a = 4; a < argc; ++a) {
    const std::string flag = argv[a];
    if (flag == "--csv") {
      csv = true;
    } else if (flag == "--out") {
      if (a + 1 >= argc) {
        std::cerr << "sweep: --out needs a file argument\n";
        return sweep_usage();
      }
      out = argv[++a];
    } else if (flag == "--checkpoint") {
      if (a + 1 >= argc) {
        std::cerr << "sweep: --checkpoint needs a file argument\n";
        return sweep_usage();
      }
      run.checkpoint_path = argv[++a];
    } else if (flag == "--jobs") {
      if (a + 1 >= argc) {
        std::cerr << "sweep: --jobs needs a value\n";
        return sweep_usage();
      }
      try {
        const long long jobs = util::parse_int(argv[++a]);
        if (jobs < 1) throw util::Error("jobs must be >= 1");
        run.threads = static_cast<unsigned>(jobs);
      } catch (const util::Error& e) {
        std::cerr << "sweep: " << e.what() << "\n";
        return sweep_usage();
      }
    } else if (flag == "--no-warm-start") {
      run.warm_start = false;
    } else {
      std::cerr << "sweep: unknown flag '" << flag << "'\n";
      return sweep_usage();
    }
  }

  const auto sweep = core::sweep_parameter(
      spec.design, spec.options, wld, parameter,
      util::linspace(lo, hi, static_cast<std::size_t>(steps)), run);
  if (!run.checkpoint_path.empty()) {
    std::cout << "checkpoint: " << run.checkpoint_path << " ("
              << sweep.profile.resumed_points << " of "
              << sweep.points.size() << " points resumed)\n";
  }
  if (sweep.profile.failed_points > 0) {
    std::cout << "warning: " << sweep.profile.failed_points
              << " point(s) failed; see the n/a rows ("
              << util::TextTable::num(
                     sweep.profile.failed_point_seconds * 1e3, 3)
              << " ms spent on failed points)\n";
  }
  if (!out.empty()) {
    core::save_sweep_csv(out, sweep);
    std::cout << "wrote " << out << "\n";
  }
  util::TextTable table(core::to_string(parameter));
  table.set_header({"value", "normalized_rank", "rank"});
  for (const auto& p : sweep.points) {
    if (!p.status.ok()) {
      table.add_row({util::TextTable::num(p.value, 4), p.status.label(),
                     "n/a"});
      continue;
    }
    table.add_row({util::TextTable::num(p.value, 4),
                   util::TextTable::num(p.result.normalized, 6),
                   std::to_string(p.result.rank)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << table;
  }
  return 0;
}

int selfcheck_usage() {
  std::cerr << "usage: rank_tool selfcheck <seeds> [--shrink]"
               " [--first-seed N] [--jobs N] [--checkpoint file.journal]\n";
  return 2;
}

int cmd_selfcheck(int argc, char** argv) {
  if (argc < 1) return selfcheck_usage();

  long long seeds = 0;
  core::SelfCheckOptions options;
  options.shrink = false;
  try {
    seeds = util::parse_int(argv[0]);
    for (int a = 1; a < argc; ++a) {
      const std::string flag = argv[a];
      if (flag == "--shrink") {
        options.shrink = true;
      } else if (flag == "--first-seed") {
        if (a + 1 >= argc) {
          std::cerr << "selfcheck: --first-seed needs a value\n";
          return selfcheck_usage();
        }
        options.first_seed =
            static_cast<std::uint64_t>(util::parse_int(argv[++a]));
      } else if (flag == "--jobs") {
        if (a + 1 >= argc) {
          std::cerr << "selfcheck: --jobs needs a value\n";
          return selfcheck_usage();
        }
        options.parallelism =
            static_cast<unsigned>(util::parse_int(argv[++a]));
      } else if (flag == "--checkpoint") {
        if (a + 1 >= argc) {
          std::cerr << "selfcheck: --checkpoint needs a file argument\n";
          return selfcheck_usage();
        }
        options.checkpoint_path = argv[++a];
      } else {
        std::cerr << "selfcheck: unknown flag '" << flag << "'\n";
        return selfcheck_usage();
      }
    }
  } catch (const util::Error& e) {
    std::cerr << "selfcheck: " << e.what() << "\n";
    return selfcheck_usage();
  }
  if (seeds < 1) {
    std::cerr << "selfcheck: seed count must be >= 1, got " << seeds << "\n";
    return selfcheck_usage();
  }

  const core::SelfCheckReport report = core::run_selfcheck(seeds, options);
  std::cout << "selfcheck: " << report.scenarios << " scenarios from seed "
            << options.first_seed << "\n";
  if (!options.checkpoint_path.empty()) {
    std::cout << "  resumed from checkpoint    " << report.resumed << "\n";
  }
  std::cout << "  brute-force oracle ran on " << report.brute_checked
            << "\n";
  std::cout << "  reference dp ran on       " << report.reference_checked
            << "\n";
  std::cout << "  mismatches                " << report.failures.size()
            << "\n";
  if (report.scenarios > report.resumed) {
    std::cout << "  seed time p50/p95/max ms  "
              << util::TextTable::num(report.seed_seconds_p50 * 1e3, 3) << " / "
              << util::TextTable::num(report.seed_seconds_p95 * 1e3, 3) << " / "
              << util::TextTable::num(report.seed_seconds_max * 1e3, 3)
              << "\n";
  }
  for (const core::SelfCheckFailure& f : report.failures) {
    std::cout << "\nMISMATCH seed " << f.seed << ": " << f.mismatch << "\n";
    std::cout << (options.shrink ? "--- shrunk repro ---\n"
                                 : "--- repro ---\n");
    std::cout << f.shrunk.describe();
    std::cout << "repro: rank_tool selfcheck 1 --first-seed " << f.seed
              << " --shrink\n";
  }
  std::cout << (report.ok() ? "OK" : "FAIL") << "\n";
  return report.ok() ? 0 : 1;
}

int faultcheck_usage() {
  std::cerr << "usage: rank_tool faultcheck <seeds> [--first-seed N]\n";
  return 2;
}

int cmd_faultcheck(int argc, char** argv) {
  if (argc < 1) return faultcheck_usage();

  core::FaultCheckOptions options;
  try {
    options.seeds = util::parse_int(argv[0]);
    for (int a = 1; a < argc; ++a) {
      const std::string flag = argv[a];
      if (flag == "--first-seed") {
        if (a + 1 >= argc) {
          std::cerr << "faultcheck: --first-seed needs a value\n";
          return faultcheck_usage();
        }
        options.first_seed =
            static_cast<std::uint64_t>(util::parse_int(argv[++a]));
      } else {
        std::cerr << "faultcheck: unknown flag '" << flag << "'\n";
        return faultcheck_usage();
      }
    }
  } catch (const util::Error& e) {
    std::cerr << "faultcheck: " << e.what() << "\n";
    return faultcheck_usage();
  }
  if (options.seeds < 1) {
    std::cerr << "faultcheck: seed count must be >= 1\n";
    return faultcheck_usage();
  }

  const core::FaultCheckReport report = core::run_faultcheck(options);
  util::TextTable table("fault injection (" + std::to_string(options.seeds) +
                        " seeds per site)");
  table.set_header(
      {"site", "hits", "injected", "isolated", "propagated", "recovered"});
  for (const core::FaultSiteOutcome& s : report.sites) {
    table.add_row({s.site, std::to_string(s.workload_hits),
                   std::to_string(s.injections), std::to_string(s.isolated),
                   std::to_string(s.propagated),
                   std::to_string(s.recovered)});
  }
  std::cout << table;
  std::cout << "armed runs: " << report.runs << "\n";
  if (report.runs > 0) {
    std::cout << "run time p50/p95/max ms: "
              << util::TextTable::num(report.run_seconds_p50 * 1e3, 3) << " / "
              << util::TextTable::num(report.run_seconds_p95 * 1e3, 3) << " / "
              << util::TextTable::num(report.run_seconds_max * 1e3, 3) << "\n";
  }
  for (const std::string& v : report.violations) {
    std::cout << "VIOLATION: " << v << "\n";
  }
  std::cout << (report.ok() ? "OK" : "FAIL") << "\n";
  return report.ok() ? 0 : 1;
}

int serve_usage() {
  std::cerr << "usage: rank_tool serve <config>"
               " (--socket PATH | --port N [--host A.B.C.D])"
               " [--workers N] [--queue-cap N] [--sweep-jobs N]"
               " [--http-port N [--http-host A.B.C.D]] [--slow-ms MS]\n";
  return 2;
}

// SIGTERM/SIGINT handoff to the main thread: the handler's only
// async-signal-safe job is one write to this self-pipe; the main thread
// blocks on the read end and runs the orderly drain.
int g_shutdown_pipe[2] = {-1, -1};

void on_shutdown_signal(int /*signo*/) {
  const char byte = 's';
  [[maybe_unused]] const ::ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

int cmd_serve(int argc, char** argv) {
  if (argc < 1) return serve_usage();
  const std::string config_path = argv[0];

  server::ServerOptions options;
  server::ServiceOptions service_options;
  bool have_address = false;
  const auto int_flag = [&](int& a, const char* name) {
    if (a + 1 >= argc) {
      throw util::Error(std::string("serve: ") + name + " needs a value");
    }
    return util::parse_int(argv[++a]);
  };
  try {
    for (int a = 1; a < argc; ++a) {
      const std::string flag = argv[a];
      if (flag == "--socket") {
        if (a + 1 >= argc) throw util::Error("serve: --socket needs a path");
        options.address.kind = server::Address::Kind::kUnix;
        options.address.path = argv[++a];
        have_address = true;
      } else if (flag == "--port") {
        const long long port = int_flag(a, "--port");
        if (port < 0 || port > 65535) {
          throw util::Error("serve: port out of range");
        }
        options.address.kind = server::Address::Kind::kTcp;
        options.address.port = static_cast<int>(port);
        have_address = true;
      } else if (flag == "--host") {
        if (a + 1 >= argc) throw util::Error("serve: --host needs a value");
        options.address.host = argv[++a];
      } else if (flag == "--workers") {
        const long long workers = int_flag(a, "--workers");
        if (workers < 1) throw util::Error("serve: --workers must be >= 1");
        options.workers = static_cast<unsigned>(workers);
      } else if (flag == "--queue-cap") {
        const long long cap = int_flag(a, "--queue-cap");
        if (cap < 1) throw util::Error("serve: --queue-cap must be >= 1");
        options.queue_capacity = static_cast<std::size_t>(cap);
      } else if (flag == "--http-port") {
        const long long port = int_flag(a, "--http-port");
        if (port < 0 || port > 65535) {
          throw util::Error("serve: http port out of range");
        }
        options.http_port = static_cast<int>(port);
      } else if (flag == "--http-host") {
        if (a + 1 >= argc) {
          throw util::Error("serve: --http-host needs a value");
        }
        options.http_host = argv[++a];
      } else if (flag == "--sweep-jobs") {
        const long long jobs = int_flag(a, "--sweep-jobs");
        if (jobs < 1) throw util::Error("serve: --sweep-jobs must be >= 1");
        service_options.sweep_threads = static_cast<unsigned>(jobs);
      } else if (flag == "--slow-ms") {
        if (a + 1 >= argc) throw util::Error("serve: --slow-ms needs a value");
        options.slow_ms = util::parse_double(argv[++a]);
      } else if (flag == "--test-endpoints") {
        // Undocumented: enables the sleep request type (load tests only).
        service_options.enable_test_endpoints = true;
      } else {
        std::cerr << "serve: unknown flag '" << flag << "'\n";
        return serve_usage();
      }
    }
  } catch (const util::Error& e) {
    std::cerr << e.what() << "\n";
    return serve_usage();
  }
  if (!have_address) {
    std::cerr << "serve: one of --socket or --port is required\n";
    return serve_usage();
  }

  const auto config = util::Config::load(config_path);
  const auto spec = core::run_spec_from_config(config);
  const auto wld = core::resolve_wld(spec);
  server::RankService service(spec, wld, service_options);
  server::Server daemon(service, options);

  if (::pipe(g_shutdown_pipe) != 0) {
    std::cerr << "serve: pipe() failed\n";
    return 1;
  }
  std::signal(SIGTERM, on_shutdown_signal);
  std::signal(SIGINT, on_shutdown_signal);

  // The readiness lines scripts wait for (flushed before blocking). The
  // http line carries the resolved port when --http-port 0 asked the
  // kernel to pick one.
  std::cout << "listening on " << server::to_string(daemon.address())
            << std::endl;
  if (daemon.http_enabled()) {
    std::cout << "http listening on "
              << server::to_string(daemon.http_address()) << std::endl;
  }

  char byte;
  ::ssize_t n;
  do {
    n = ::read(g_shutdown_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::cout << "shutdown signal received; draining" << std::endl;
  daemon.stop();
  ::close(g_shutdown_pipe[0]);
  ::close(g_shutdown_pipe[1]);
  std::cout << "drained; exiting" << std::endl;
  return 0;
}

int request_usage() {
  std::cerr << "usage: rank_tool request <addr> ping\n"
               "       rank_tool request <addr> metrics\n"
               "       rank_tool request <addr> rank [key=value ...]\n"
               "       rank_tool request <addr> sweep <K|M|C|R> <lo> <hi>"
               " <steps> [key=value ...]\n"
               "       rank_tool request <addr> raw <json>\n"
               "  <addr>: unix:<path> or tcp:<host>:<port>\n"
               "  flags: --timeout S (connect/read deadline, default 30;"
               " 0 = none)\n"
               "         --retries N (reconnect attempts on transport"
               " failure, default 0)\n";
  return 2;
}

int explore_usage() {
  std::cerr
      << "usage: rank_tool explore <spec> [--dir D] [--workers N] [--jobs N]\n"
         "                 [--chunk N] [--lease-ttl S] [--poison-threshold N]\n"
         "                 [--fsync] [--worker]\n"
         "  <spec>: a rank_tool config plus explore.* dimension lists\n"
         "          (explore.node, explore.rent_p, explore.target_model,\n"
         "          explore.K/M/C/R as comma lists or lo:hi:n ranges)\n"
         "  --dir D          run directory (default explore-run); a rerun\n"
         "                   with the same spec resumes from its journals\n"
         "  --workers N      worker processes to fork (default 0 = evaluate\n"
         "                   in-process); SIGKILLed workers are respawned\n"
         "                   and their leases reclaimed\n"
         "  --jobs N         threads for in-process evaluation (default 1)\n"
         "  --chunk N        lease granularity in grid points (default 256)\n"
         "  --lease-ttl S    heartbeat staleness before reclaim (default 10)\n"
         "  --worker         run one worker attached to --dir's queue (a\n"
         "                   coordinator must have populated it)\n";
  return 2;
}

int cmd_explore(int argc, char** argv) {
  if (argc < 1) return explore_usage();
  const std::string spec_path = argv[0];
  core::ExploreOptions options;
  bool worker_mode = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--fsync") {
      options.fsync_journal = true;
      continue;
    }
    if (arg == "--worker") {
      worker_mode = true;
      continue;
    }
    if (a + 1 >= argc) return explore_usage();
    const std::string value = argv[++a];
    if (arg == "--dir") {
      options.dir = value;
    } else if (arg == "--workers") {
      options.workers = static_cast<int>(util::parse_int(value));
    } else if (arg == "--jobs") {
      const long long jobs = util::parse_int(value);
      if (jobs < 1) return explore_usage();
      options.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--chunk") {
      options.chunk_points = util::parse_int(value);
    } else if (arg == "--lease-ttl") {
      options.lease_ttl_seconds = util::parse_double(value);
    } else if (arg == "--poison-threshold") {
      options.poison_threshold = static_cast<int>(util::parse_int(value));
    } else {
      return explore_usage();
    }
  }

  const core::ExploreSpec spec = core::ExploreSpec::load(spec_path);
  if (worker_mode) return core::run_explore_worker(spec, options);

  const core::ExploreResult result = core::run_explore(spec, options);
  std::cout << "explore: " << spec.total_points() << " points, ok "
            << result.ok << ", failed " << result.failed << ", quarantined "
            << result.quarantined << "\n"
            << "merge: resumed " << result.resumed << ", duplicates "
            << result.duplicates << ", torn tails " << result.torn_tails
            << "\n"
            << "pareto front: " << result.pareto.size() << " points\n"
            << "results: " << options.dir << "/points.csv, " << options.dir
            << "/pareto.csv\n";
  return 0;
}

util::Json overrides_from_args(int argc, char** argv, int start) {
  util::Json overrides;
  for (int a = start; a < argc; ++a) {
    const std::string pair = argv[a];
    const auto eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw util::Error("request: expected key=value, got '" + pair + "'");
    }
    overrides[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return overrides;
}

int cmd_request(int argc, char** argv) {
  // Client resilience flags, accepted anywhere: a wedged daemon must be a
  // bounded-time failure, and a restarting one is worth a few retries.
  server::ClientOptions client;
  client.timeout_seconds = 30.0;
  {
    std::vector<char*> kept;
    kept.reserve(static_cast<std::size_t>(argc));
    for (int a = 0; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--timeout" || arg == "--retries") {
        if (a + 1 >= argc) {
          std::cerr << "request: " << arg << " needs a value\n";
          return request_usage();
        }
        if (arg == "--timeout") {
          client.timeout_seconds = util::parse_double(argv[++a]);
        } else {
          client.retries = static_cast<int>(util::parse_int(argv[++a]));
        }
        continue;
      }
      kept.push_back(argv[a]);
    }
    for (std::size_t i = 0; i < kept.size(); ++i) argv[i] = kept[i];
    argc = static_cast<int>(kept.size());
  }
  if (argc < 2) return request_usage();
  const server::Address address = server::parse_address(argv[0]);
  const std::string what = argv[1];

  std::string payload;
  if (what == "ping" || what == "metrics") {
    util::Json request;
    request["type"] = what;
    payload = request.dump();
  } else if (what == "rank") {
    util::Json request;
    request["type"] = "rank";
    if (argc > 2) request["overrides"] = overrides_from_args(argc, argv, 2);
    payload = request.dump();
  } else if (what == "sweep") {
    if (argc < 6) return request_usage();
    util::Json request;
    request["type"] = "sweep";
    request["parameter"] = argv[2];
    request["lo"] = util::parse_double(argv[3]);
    request["hi"] = util::parse_double(argv[4]);
    request["steps"] = static_cast<std::int64_t>(util::parse_int(argv[5]));
    if (argc > 6) request["overrides"] = overrides_from_args(argc, argv, 6);
    payload = request.dump();
  } else if (what == "raw") {
    if (argc < 3) return request_usage();
    payload = argv[2];
  } else {
    std::cerr << "request: unknown request '" << what << "'\n";
    return request_usage();
  }

  const std::string response_text =
      server::request_with_retry(address, payload, client);

  // An unparseable response is a server bug; report it verbatim.
  util::Json response;
  try {
    response = util::Json::parse(response_text);
  } catch (const util::Error&) {
    std::cerr << "request: unparseable response: " << response_text << "\n";
    return 1;
  }
  const util::Json* ok = response.is_object() ? response.find("ok") : nullptr;
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    // Metrics unwrap to the Prometheus text itself; everything else prints
    // as the response JSON.
    const util::Json* body = response.find("body");
    if (what == "metrics" && body != nullptr && body->is_string()) {
      std::cout << body->as_string();
    } else {
      std::cout << response_text << "\n";
    }
    return 0;
  }
  std::cerr << response_text << "\n";
  const util::Json* error = response.find("error");
  if (error != nullptr && error->is_object()) {
    const util::Json* code = error->find("code");
    if (code != nullptr && code->is_string() &&
        code->as_string() == "internal") {
      return 1;
    }
  }
  return 2;
}

/// Global observability flags, stripped from argv before dispatch so every
/// subcommand accepts them in any position.
struct ObservabilityFlags {
  std::string trace_path;
  std::string metrics_path;
  std::string log_path;
  std::string flight_path;
  bool bad_usage = false;
};

ObservabilityFlags strip_observability_flags(int& argc, char** argv) {
  ObservabilityFlags flags;
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(argc));
  for (int a = 0; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--trace" || arg == "--metrics" || arg == "--log" ||
        arg == "--flight-recorder") {
      if (a + 1 >= argc) {
        std::cerr << "rank_tool: " << arg << " needs a file argument\n";
        flags.bad_usage = true;
        return flags;
      }
      std::string& slot = arg == "--trace"     ? flags.trace_path
                          : arg == "--metrics" ? flags.metrics_path
                          : arg == "--log"     ? flags.log_path
                                               : flags.flight_path;
      slot = argv[++a];
      continue;
    }
    kept.push_back(argv[a]);
  }
  for (std::size_t i = 0; i < kept.size(); ++i) argv[i] = kept[i];
  argc = static_cast<int>(kept.size());
  return flags;
}

/// SIGTERM/SIGINT with the flight recorder armed: the only async-signal-
/// safe work is the recorder's raw-syscall dump; then the default action
/// runs so the exit status still says "killed by signal".
void on_fatal_signal(int signo) {
  iarank::util::EventLog::instance().dump_flight_recorder_signal_safe();
  std::signal(signo, SIG_DFL);
  ::raise(signo);
}

int dispatch(int argc, char** argv) {
  // Single top-level handler: util::Error categories map onto exit codes
  // (user error -> 2, internal/unknown -> 1), so scripts and CI can tell
  // "you gave me a bad config" from "the tool itself broke".
  try {
    if (std::string(argv[1]) == "selfcheck") {
      return cmd_selfcheck(argc - 2, argv + 2);
    }
    if (std::string(argv[1]) == "faultcheck") {
      return cmd_faultcheck(argc - 2, argv + 2);
    }
    if (std::string(argv[1]) == "serve") {
      return cmd_serve(argc - 2, argv + 2);
    }
    if (std::string(argv[1]) == "request") {
      return cmd_request(argc - 2, argv + 2);
    }
    if (std::string(argv[1]) == "explore") {
      return cmd_explore(argc - 2, argv + 2);
    }
    const auto config = iarank::util::Config::load(argv[1]);
    const auto spec = iarank::core::run_spec_from_config(config);
    const auto wld = iarank::core::resolve_wld(spec);

    const std::string command = argc > 2 ? argv[2] : "rank";
    if (command == "rank") return cmd_rank(spec, wld);
    if (command == "profile") return cmd_profile(spec, wld);
    if (command == "wld") return cmd_wld(spec, wld);
    if (command == "sensitivity") return cmd_sensitivity(spec, wld);
    if (command == "trace") return cmd_trace(spec, wld);
    if (command == "sweep") return cmd_sweep(spec, wld, argc - 3, argv + 3);
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  } catch (const iarank::util::Error& e) {
    std::cerr << "rank_tool: error (" << to_string(e.category())
              << "): " << e.what() << "\n";
    switch (e.category()) {
      case iarank::util::ErrorCategory::kBadInput:
      case iarank::util::ErrorCategory::kInfeasible:
      case iarank::util::ErrorCategory::kIo:
        return 2;
      case iarank::util::ErrorCategory::kInternal:
        return 1;
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "rank_tool: internal error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ObservabilityFlags obs = strip_observability_flags(argc, argv);
  if (obs.bad_usage) return 2;
  if (argc < 2) {
    std::cerr << "usage: rank_tool <config-file>"
                 " [rank|sweep|profile|sensitivity|trace|wld] ...\n"
                 "       rank_tool selfcheck <seeds> [--shrink]\n"
                 "       rank_tool faultcheck <seeds> [--first-seed N]\n"
                 "       rank_tool serve <config-file>"
                 " (--socket PATH | --port N) [--workers N]\n"
                 "       rank_tool request <addr>"
                 " ping|metrics|rank|sweep|raw ...\n"
                 "       rank_tool explore <spec> [--dir D] [--workers N]"
                 " [--worker] ...\n"
                 "       any command also accepts --trace FILE.json,"
                 " --metrics FILE,\n"
                 "       --log FILE (JSONL events) and --flight-recorder"
                 " FILE\n";
    return 2;
  }

  if (!obs.trace_path.empty()) iarank::util::Trace::enable();
  try {
    if (!obs.log_path.empty()) {
      iarank::util::EventLog::instance().open(obs.log_path);
    }
    if (!obs.flight_path.empty()) {
      iarank::util::EventLog::instance().arm_flight_recorder(obs.flight_path);
      // Dump the ring before dying on a signal; serve installs its own
      // drain handler later, and its orderly exit reaches the exit-time
      // dump below instead.
      std::signal(SIGTERM, on_fatal_signal);
      std::signal(SIGINT, on_fatal_signal);
    }
  } catch (const std::exception& e) {
    std::cerr << "rank_tool: cannot open event log: " << e.what() << "\n";
    return 2;
  }
  {
    iarank::util::EventLog& events = iarank::util::EventLog::instance();
    if (events.enabled()) {
      iarank::util::Json fields;
      iarank::util::Json args(iarank::util::Json::Array{});
      for (int a = 1; a < argc; ++a) args.push_back(std::string(argv[a]));
      fields["argv"] = std::move(args);
      fields["pid"] = static_cast<std::int64_t>(::getpid());
      events.emit(iarank::util::Severity::kInfo, "tool.start",
                  std::move(fields));
    }
  }
  int rc = dispatch(argc, argv);
  {
    iarank::util::EventLog& events = iarank::util::EventLog::instance();
    if (events.enabled()) {
      iarank::util::Json fields;
      fields["exit_code"] = static_cast<std::int64_t>(rc);
      events.emit(iarank::util::Severity::kInfo, "tool.exit",
                  std::move(fields));
    }
  }

  // Exports happen even when the command failed: a trace of the failing
  // run is exactly what the flag was passed for.
  try {
    if (!obs.trace_path.empty()) {
      iarank::util::Trace::disable();
      iarank::util::Trace::save_chrome_json(obs.trace_path);
      std::cerr << "trace written to " << obs.trace_path << "\n";
    }
    if (!obs.metrics_path.empty()) {
      iarank::util::MetricsRegistry::instance().save(obs.metrics_path);
      std::cerr << "metrics written to " << obs.metrics_path << "\n";
    }
    if (!obs.log_path.empty()) {
      iarank::util::EventLog::instance().close();
      std::cerr << "events written to " << obs.log_path << "\n";
    }
    if (!obs.flight_path.empty()) {
      // A run that ends without crashing still leaves its last events on
      // disk — the recorder is a postmortem either way.
      iarank::util::EventLog::instance().dump_flight_recorder();
      std::cerr << "flight recorder written to " << obs.flight_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "rank_tool: observability export failed: " << e.what()
              << "\n";
    if (rc == 0) rc = 2;
  }
  return rc;
}
