#!/usr/bin/env python3
"""Compare a fresh benchmark snapshot against a checked-in baseline.

Handles both snapshot schemas produced by tests/bench_snapshot.sh:

  * BENCH_dp.json — google-benchmark reports ("dp_kernel", "sweep"
    sections with *_median / *_mean aggregate entries) plus the
    deterministic "sweep_c_jobs1_dp_counters" block;
  * BENCH_server.json — bench_server's flat dict (req/s, latency
    percentiles, queue-wait percentiles, wire books).

Timing metrics are compared against --threshold (percent): a timed
metric that regresses past the threshold (slower, or lower req/s) fails
the run. CI passes a deliberately generous threshold — shared runners
are noisy, so only order-of-magnitude regressions should gate — while a
developer on quiet hardware can tighten it. Deterministic DP counters
are compared exactly; mismatches are informational by default (an
intentional algorithm change legitimately moves them, and the snapshot
is regenerated in the same PR) and fatal under --strict-counters.

usage: bench_compare.py BASELINE FRESH [--threshold PCT]
                        [--strict-counters]
       bench_compare.py --self-test

exit codes: 0 within threshold, 1 regression, 2 bad input.
"""

import argparse
import json
import sys


def _gb_timings(section):
    """name -> real_time from a google-benchmark section, preferring the
    _median aggregate over _mean (3 repetitions; the median shrugs off a
    single noisy run)."""
    out = {}
    for bench in section.get("benchmarks", []):
        name = bench.get("name", "")
        if "real_time" not in bench:
            continue
        for suffix in ("_median", "_mean"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if suffix == "_median" or base not in out:
                    out[base] = float(bench["real_time"])
                break
    return out


def extract(snapshot):
    """Returns (timings, counters). Timings map name -> (value,
    better) with better in {"lower", "higher"}; counters map
    name -> exact value."""
    timings = {}
    counters = {}
    if "dp_kernel" in snapshot or "sweep" in snapshot:
        for section in ("dp_kernel", "sweep"):
            for name, value in _gb_timings(snapshot.get(section, {})).items():
                timings[f"{section}/{name}"] = (value, "lower")
        for name, value in snapshot.get(
            "sweep_c_jobs1_dp_counters", {}
        ).items():
            counters[name] = value
        # Deterministic per-benchmark counters: the kernel's pool draw and
        # the steady-state allocation count of the warm-reuse benchmark
        # (exact zero by contract; gated absolutely under
        # --strict-counters).
        for bench in snapshot.get("dp_kernel", {}).get("benchmarks", []):
            name = bench.get("name", "")
            for suffix in ("_median", "_mean"):
                if not name.endswith(suffix):
                    continue
                base = name[: -len(suffix)]
                for key in ("steady_allocs", "arena_bytes"):
                    full = f"dp_kernel/{base}/{key}"
                    if key in bench and (suffix == "_median"
                                         or full not in counters):
                        counters[full] = float(bench[key])
                break
    elif snapshot.get("bench") == "bench_server":
        gated = {
            "req_per_s": "higher",
            "p50_ms": "lower",
            "p99_ms": "lower",
            "queue_wait_p50_ms": "lower",
            "queue_wait_p99_ms": "lower",
        }
        for name, better in gated.items():
            if isinstance(snapshot.get(name), (int, float)):
                timings[name] = (float(snapshot[name]), better)
    else:
        raise ValueError("unrecognized snapshot schema")
    return timings, counters


def compare(baseline, fresh, threshold_pct, strict_counters):
    """Prints the delta table; returns the list of violation strings."""
    base_t, base_c = extract(baseline)
    fresh_t, fresh_c = extract(fresh)
    violations = []

    rows = []
    for name in sorted(set(base_t) & set(fresh_t)):
        b, better = base_t[name]
        f, _ = fresh_t[name]
        if b <= 0:
            continue
        delta_pct = (f - b) / b * 100.0
        regressed = (
            delta_pct > threshold_pct
            if better == "lower"
            else -delta_pct > threshold_pct
        )
        status = "REGRESSED" if regressed else "ok"
        if regressed:
            violations.append(
                f"{name}: {b:.6g} -> {f:.6g} ({delta_pct:+.1f}%, "
                f"threshold {threshold_pct:.0f}%)"
            )
        rows.append((name, f"{b:.6g}", f"{f:.6g}", f"{delta_pct:+.1f}%", status))

    for name in sorted(set(base_c) & set(fresh_c)):
        b, f = base_c[name], fresh_c[name]
        if b == f:
            rows.append((name, f"{b:g}", f"{f:g}", "=", "ok"))
            continue
        status = "COUNTER-DRIFT" if strict_counters else "drift (info)"
        if strict_counters:
            violations.append(f"{name}: counter {b:g} -> {f:g}")
        rows.append((name, f"{b:g}", f"{f:g}", "", status))

    # Absolute gate, baseline-independent: a warm kernel must not touch
    # the heap. Only enforced when the fresh snapshot actually measured
    # it (builds with IARANK_COUNT_ALLOCS=OFF omit the counter).
    if strict_counters:
        for name, value in sorted(fresh_c.items()):
            if name.endswith("/steady_allocs") and value != 0:
                violations.append(
                    f"{name}: steady-state allocations must be zero, "
                    f"got {value:g}"
                )

    missing = (set(base_t) | set(base_c)) - (set(fresh_t) | set(fresh_c))
    for name in sorted(missing):
        rows.append((name, "", "", "", "missing in fresh"))

    if not rows:
        raise ValueError("no comparable metrics between the two snapshots")
    widths = [
        max(len(r[i]) for r in rows + [("metric", "baseline", "fresh",
                                        "delta", "status")])
        for i in range(5)
    ]
    header = ("metric", "baseline", "fresh", "delta", "status")
    for row in (header,) + tuple(rows):
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return violations


def self_test():
    base = {
        "dp_kernel": {
            "benchmarks": [
                {"name": "BM_Dp_median", "real_time": 100.0},
                {"name": "BM_Dp_mean", "real_time": 105.0},
                {"name": "BM_DpSteady_median", "real_time": 90.0,
                 "steady_allocs": 0.0, "arena_bytes": 4096.0},
            ]
        },
        "sweep": {"benchmarks": []},
        "sweep_c_jobs1_dp_counters": {"iarank_dp_heap_pops_total": 26},
    }
    ok = json.loads(json.dumps(base))
    slow = json.loads(json.dumps(base))
    slow["dp_kernel"]["benchmarks"][0]["real_time"] = 200.0
    drift = json.loads(json.dumps(base))
    drift["sweep_c_jobs1_dp_counters"]["iarank_dp_heap_pops_total"] = 28

    assert compare(base, ok, 25.0, False) == []
    assert len(compare(base, slow, 25.0, False)) == 1
    assert compare(base, slow, 150.0, False) == []
    assert compare(base, drift, 25.0, False) == []
    assert len(compare(base, drift, 25.0, True)) == 1

    # The zero-allocation gate is absolute: even a baseline with the same
    # nonzero count fails under --strict-counters.
    leaky = json.loads(json.dumps(base))
    leaky["dp_kernel"]["benchmarks"][2]["steady_allocs"] = 7.0
    assert compare(base, leaky, 25.0, False) == []  # info only
    assert any("must be zero" in v for v in compare(leaky, leaky, 25.0, True))
    assert compare(base, ok, 25.0, True) == []

    server = {"bench": "bench_server", "req_per_s": 1000.0, "p50_ms": 1.0,
              "p99_ms": 4.0}
    slower = dict(server, req_per_s=100.0)
    assert compare(server, server, 25.0, False) == []
    assert len(compare(server, slower, 25.0, False)) == 1
    print("bench_compare self-test: OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two bench snapshots, exit nonzero past threshold"
    )
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed timing regression, percent")
    parser.add_argument("--strict-counters", action="store_true",
                        help="deterministic counter drift fails the run")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        parser.error("BASELINE and FRESH are required (or --self-test)")
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
        violations = compare(baseline, fresh, args.threshold,
                             args.strict_counters)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    for v in violations:
        print(f"REGRESSION: {v}")
    if not violations:
        print(f"within threshold ({args.threshold:.0f}%)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
